// Tests for the integer-encoded similarity kernels (sim/kernel.h), the
// verified-pair cache (sim/pair_cache.h), and the invariants the join
// and engine build on them: every kernel score is bit-equal to the
// string-path metric, the threshold-bounded forms never change which
// pairs survive, and flipping the kernels / pair-cache knobs leaves
// labels and merge sequences byte-identical at every thread count.

#include "sim/kernel.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <random>
#include <set>
#include <string>
#include <tuple>
#include <vector>

#include "sim/kernel_dispatch.h"
#include "sim/string_metrics.h"

#include "baselines/homogeneous.h"
#include "blocking/token_blocking.h"
#include "core/hera.h"
#include "data/movie_generator.h"
#include "data/publication_generator.h"
#include "matching/weight_kernel.h"
#include "sim/metrics.h"
#include "sim/pair_cache.h"
#include "simjoin/similarity_join.h"
#include "text/normalize.h"
#include "text/qgram.h"

namespace hera {
namespace {

// ------------------------------------------------- intersection kernels

std::vector<uint32_t> SortedSet(std::vector<uint32_t> v) {
  std::sort(v.begin(), v.end());
  v.erase(std::unique(v.begin(), v.end()), v.end());
  return v;
}

std::vector<uint32_t> RandomSet(std::mt19937* rng, size_t n, uint32_t lo,
                                uint32_t hi) {
  std::uniform_int_distribution<uint32_t> dist(lo, hi);
  std::vector<uint32_t> v;
  v.reserve(n);
  for (size_t i = 0; i < n; ++i) v.push_back(dist(*rng));
  return SortedSet(std::move(v));
}

size_t ReferenceIntersect(const std::vector<uint32_t>& a,
                          const std::vector<uint32_t>& b) {
  std::vector<uint32_t> out;
  std::set_intersection(a.begin(), a.end(), b.begin(), b.end(),
                        std::back_inserter(out));
  return out.size();
}

TEST(KernelIntersectTest, AllStrategiesAgreeWithReference) {
  std::mt19937 rng(42);
  for (int trial = 0; trial < 200; ++trial) {
    // Mix of dense windows (bitmap-eligible), skewed sizes (gallop),
    // and wide sparse sets (merge).
    size_t na = trial % 7 == 0 ? 0 : rng() % 64;
    size_t nb = trial % 11 == 0 ? 0 : rng() % 512;
    uint32_t hi = trial % 3 == 0 ? 900 : 100000;
    auto a = RandomSet(&rng, na, 0, hi);
    auto b = RandomSet(&rng, nb, 0, hi);
    size_t want = ReferenceIntersect(a, b);
    EXPECT_EQ(IntersectSizeMerge(a.data(), a.size(), b.data(), b.size()), want);
    EXPECT_EQ(IntersectSizeGallop(a.data(), a.size(), b.data(), b.size()), want);
    EXPECT_EQ(IntersectSizeGallop(b.data(), b.size(), a.data(), a.size()), want);
    if (!a.empty() && !b.empty() && BitmapEligible(a, b)) {
      EXPECT_EQ(IntersectSizeBitmap(a, b), want);
    }
    EXPECT_EQ(IntersectSize(a, b), want);
    EXPECT_EQ(IntersectSize(b, a), want);
  }
}

TEST(KernelIntersectTest, BitmapEligibilityIsAWindowTest) {
  // The window is id-inclusive: exactly kBitmapBits distinct ids fit.
  std::vector<uint32_t> wide = {10, 500, 10 + kBitmapBits};
  EXPECT_FALSE(BitmapEligible(wide, wide));
  std::vector<uint32_t> fits = {10, 500, 10 + kBitmapBits - 1};
  EXPECT_TRUE(BitmapEligible(fits, fits));
  EXPECT_EQ(IntersectSizeBitmap(fits, fits), 3u);
  std::vector<uint32_t> far = {1000000};
  EXPECT_FALSE(BitmapEligible(fits, far));
}

constexpr SetSimKind kAllKinds[] = {SetSimKind::kJaccard, SetSimKind::kDice,
                                    SetSimKind::kOverlap, SetSimKind::kCosine};

// --------------------------------------------- SIMD dispatch + kernels

/// Tiers that can actually run on this machine (resolution clamps, so
/// every named tier is testable everywhere — unsupported ones just
/// alias a lower tier).
const KernelDispatch kSweepTiers[] = {KernelDispatch::kScalar,
                                      KernelDispatch::kSse4,
                                      KernelDispatch::kAvx2};

TEST(KernelDispatchTest, StringRoundTripAndUnknownNames) {
  for (KernelDispatch t : {KernelDispatch::kAuto, KernelDispatch::kAvx2,
                           KernelDispatch::kSse4, KernelDispatch::kScalar}) {
    KernelDispatch back;
    ASSERT_TRUE(KernelDispatchFromString(KernelDispatchToString(t), &back));
    EXPECT_EQ(back, t);
  }
  KernelDispatch t;
  EXPECT_FALSE(KernelDispatchFromString("", &t));
  EXPECT_FALSE(KernelDispatchFromString("avx512", &t));
  EXPECT_FALSE(KernelDispatchFromString("AVX2", &t));
}

TEST(KernelDispatchTest, ResolutionNeverReturnsAutoAndClampsDown) {
  for (KernelDispatch req : {KernelDispatch::kAuto, KernelDispatch::kAvx2,
                             KernelDispatch::kSse4, KernelDispatch::kScalar}) {
    KernelDispatch got = ResolveKernelDispatch(req);
    EXPECT_NE(got, KernelDispatch::kAuto);
    EXPECT_TRUE(CpuSupportsKernelDispatch(got));
  }
  // Scalar is always supported and always resolves to itself.
  EXPECT_EQ(ResolveKernelDispatch(KernelDispatch::kScalar),
            KernelDispatch::kScalar);
  EXPECT_TRUE(CpuSupportsKernelDispatch(KernelDispatch::kScalar));
  EXPECT_NE(BestSupportedKernelDispatch(), KernelDispatch::kAuto);
  // Gauge values are the documented 0/1/2 encoding.
  EXPECT_EQ(KernelDispatchGaugeValue(KernelDispatch::kScalar), 0);
  EXPECT_EQ(KernelDispatchGaugeValue(KernelDispatch::kSse4), 1);
  EXPECT_EQ(KernelDispatchGaugeValue(KernelDispatch::kAvx2), 2);
}

TEST(KernelSimdTest, AllTiersMatchReferenceAtVectorWidthBuckets) {
  std::mt19937 rng(2024);
  // Length buckets straddle the 4-lane (SSE) and 8-lane (AVX2) block
  // boundaries plus the scalar tail: off-by-one bugs in the block loop
  // or MergeTail land exactly there.
  const size_t buckets[] = {0, 1, 3, 4, 5, 7, 8, 9, 15, 16, 17, 31, 32, 33, 63,
                            64, 65, 100};
  for (size_t na : buckets) {
    for (size_t nb : buckets) {
      for (int rep = 0; rep < 6; ++rep) {
        // Alternate dense (many hits, windows overlap) and sparse
        // (disjoint-window skip path) universes.
        uint32_t hi = rep % 2 == 0 ? static_cast<uint32_t>(na + nb + 8)
                                   : 1000000;
        auto a = RandomSet(&rng, na, 0, hi);
        auto b = RandomSet(&rng, nb, 0, hi);
        size_t want = ReferenceIntersect(a, b);
        for (KernelDispatch tier : kSweepTiers) {
          EXPECT_EQ(
              IntersectSizeSimd(a.data(), a.size(), b.data(), b.size(), tier),
              want)
              << "tier=" << KernelDispatchToString(tier) << " na=" << a.size()
              << " nb=" << b.size();
        }
      }
    }
  }
}

TEST(KernelSimdTest, BoundedSimilarityBitEqualAcrossTiers) {
  std::mt19937 rng(31337);
  const double xis[] = {0.0, 0.2, 0.5, 0.8, 0.95, 1.0};
  for (int trial = 0; trial < 400; ++trial) {
    uint32_t hi = trial % 2 == 0 ? 300 : 50000;
    auto a = RandomSet(&rng, rng() % 130, 0, hi);
    auto b = RandomSet(&rng, rng() % 130, 0, hi);
    SetSimKind kind = kAllKinds[trial % 4];
    double full = SetSimilarity(kind, a, b);
    for (double xi : xis) {
      double want = full >= xi ? full : kBelowThreshold;
      for (KernelDispatch tier : kSweepTiers) {
        // Bit-equal including the sentinel: abandon timing differs per
        // tier (per-block vs per-element) but the decision cannot.
        EXPECT_EQ(SetSimilarityBounded(kind, a, b, xi, tier), want)
            << "tier=" << KernelDispatchToString(tier) << " xi=" << xi;
      }
    }
  }
}

TEST(KernelSimdTest, SimdCounterAdvancesOnVectorTiers) {
  std::mt19937 rng(5);
  auto a = RandomSet(&rng, 64, 0, 10000);
  auto b = RandomSet(&rng, 64, 0, 10000);
  if (ResolveKernelDispatch(KernelDispatch::kSse4) == KernelDispatch::kScalar) {
    GTEST_SKIP() << "no vector tier on this CPU";
  }
  uint64_t before = KernelCountersNow().simd_intersections;
  IntersectSizeSimd(a.data(), a.size(), b.data(), b.size(),
                    KernelDispatch::kSse4);
  EXPECT_GT(KernelCountersNow().simd_intersections, before);
  // The scalar tier never touches the SIMD counter.
  uint64_t mid = KernelCountersNow().simd_intersections;
  IntersectSizeSimd(a.data(), a.size(), b.data(), b.size(),
                    KernelDispatch::kScalar);
  EXPECT_EQ(KernelCountersNow().simd_intersections, mid);
}

// ------------------------------------------- Myers edit-distance kernel

/// Reference corpus for the edit kernels: ASCII, multi-byte UTF-8,
/// embedded NULs, and strings crossing the 64/128 block boundaries.
std::vector<std::string> EditCorpus() {
  std::vector<std::string> corpus = {
      "",
      "a",
      "kitten",
      "sitting",
      "The Matrix (1999)",
      "the matrix",
      "Ein schöner Tag — naïve café",
      "数据库 систем records",
      std::string("nul\0inside", 10),       // embedded NUL
      std::string("\0\0\0", 3),             // all NULs
      std::string(63, 'x'),                 // one word exactly
      std::string(64, 'x'),                 // word boundary
      std::string(65, 'x'),                 // first multi-block length
      std::string(64, 'x') + "y",
      std::string(128, 'a'),                // two-block boundary
      std::string(129, 'b'),
      "entity resolution on heterogeneous records",
  };
  std::mt19937 rng(77);
  std::uniform_int_distribution<int> byte(0, 255);  // Full byte alphabet.
  std::uniform_int_distribution<int> narrow('a', 'd');
  for (int i = 0; i < 30; ++i) {
    std::string s;
    size_t len = rng() % 150;
    for (size_t j = 0; j < len; ++j) {
      s.push_back(static_cast<char>(i % 2 == 0 ? narrow(rng) : byte(rng)));
    }
    corpus.push_back(std::move(s));
  }
  return corpus;
}

TEST(MyersTest, MatchesDpOnCorpusAndBothDirections) {
  const std::vector<std::string> corpus = EditCorpus();
  for (const std::string& a : corpus) {
    for (const std::string& b : corpus) {
      size_t want = LevenshteinDistanceDp(a, b);
      EXPECT_EQ(LevenshteinDistanceMyers(a, b), want)
          << "|a|=" << a.size() << " |b|=" << b.size();
      // The dispatching entry point agrees on every tier.
      EXPECT_EQ(LevenshteinDistance(a, b), want);
    }
  }
}

TEST(MyersTest, BoundedIsExactAtOrAboveTheDistance) {
  const std::vector<std::string> corpus = EditCorpus();
  std::mt19937 rng(3);
  for (int trial = 0; trial < 300; ++trial) {
    const std::string& a = corpus[rng() % corpus.size()];
    const std::string& b = corpus[rng() % corpus.size()];
    size_t d = LevenshteinDistanceDp(a, b);
    // Exact at the distance and above it...
    EXPECT_EQ(LevenshteinDistanceBounded(a, b, d), d);
    EXPECT_EQ(LevenshteinDistanceBounded(a, b, d + 3), d);
    // ...and strictly greater than any limit below it.
    if (d > 0) {
      EXPECT_GT(LevenshteinDistanceBounded(a, b, d - 1), d - 1);
    }
  }
}

TEST(MyersTest, NormalizedAtLeastIsExactOrZero) {
  const std::vector<std::string> corpus = EditCorpus();
  std::mt19937 rng(9);
  const double floors[] = {0.0, 0.15, 0.5, 0.75, 0.9, 1.0};
  for (int trial = 0; trial < 400; ++trial) {
    const std::string& a = corpus[rng() % corpus.size()];
    const std::string& b = corpus[rng() % corpus.size()];
    double full = NormalizedLevenshtein(a, b);
    for (double floor : floors) {
      double got = NormalizedLevenshteinAtLeast(a, b, floor);
      if (full >= floor) {
        // Bit-equal: the threshold conversion uses the same double
        // expression NormalizedLevenshtein evaluates.
        EXPECT_EQ(got, full) << "floor=" << floor;
      } else {
        EXPECT_EQ(got, 0.0) << "floor=" << floor;
      }
    }
  }
}

TEST(MyersTest, CounterAdvancesOffTheScalarTier) {
  uint64_t before = KernelCountersNow().myers_calls;
  LevenshteinDistanceMyers("heterogeneous", "heterogenous");
  EXPECT_GT(KernelCountersNow().myers_calls, before);
}

// ------------------------------------- threshold conversion exactness

double Formula(SetSimKind kind, size_t inter, size_t na, size_t nb) {
  // The same expressions the kernels and string metrics evaluate.
  switch (kind) {
    case SetSimKind::kJaccard:
      return static_cast<double>(inter) / static_cast<double>(na + nb - inter);
    case SetSimKind::kDice:
      return 2.0 * static_cast<double>(inter) / static_cast<double>(na + nb);
    case SetSimKind::kOverlap:
      return static_cast<double>(inter) /
             static_cast<double>(std::min(na, nb));
    case SetSimKind::kCosine:
      return static_cast<double>(inter) /
             std::sqrt(static_cast<double>(na) * static_cast<double>(nb));
  }
  return 0.0;
}

TEST(KernelThresholdTest, MinOverlapMatchesBruteForce) {
  const double xis[] = {0.0, 0.1, 0.25, 0.5, 0.5000000001, 0.75, 0.9, 1.0};
  for (SetSimKind kind : kAllKinds) {
    for (size_t na = 0; na <= 24; ++na) {
      for (size_t nb = 0; nb <= 24; ++nb) {
        size_t cap = std::min(na, nb);
        for (double xi : xis) {
          size_t got = MinOverlapForThreshold(kind, na, nb, xi);
          // Exactness: o reaches xi under the double formula iff
          // o >= got, for every feasible o.
          for (size_t o = 0; o <= cap; ++o) {
            bool reaches = na > 0 && nb > 0 && Formula(kind, o, na, nb) >= xi;
            EXPECT_EQ(reaches, o >= got)
                << "kind=" << static_cast<int>(kind) << " na=" << na
                << " nb=" << nb << " xi=" << xi << " o=" << o;
          }
        }
      }
    }
  }
}

TEST(KernelThresholdTest, BoundedReturnsExactScoreOrSentinel) {
  std::mt19937 rng(7);
  const double xis[] = {0.0, 0.2, 0.5, 0.8, 1.0};
  for (int trial = 0; trial < 300; ++trial) {
    auto a = RandomSet(&rng, rng() % 40, 0, 200);
    auto b = RandomSet(&rng, rng() % 40, 0, 200);
    double full = SetSimilarity(kAllKinds[trial % 4], a, b);
    for (double xi : xis) {
      double bounded = SetSimilarityBounded(kAllKinds[trial % 4], a, b, xi);
      if (full >= xi) {
        // Bit-equal, not approximately equal.
        EXPECT_EQ(bounded, full);
      } else {
        EXPECT_EQ(bounded, kBelowThreshold);
      }
    }
  }
}

TEST(KernelThresholdTest, OverlapUpperBoundIsSound) {
  std::mt19937 rng(13);
  for (int trial = 0; trial < 200; ++trial) {
    auto a = RandomSet(&rng, rng() % 60, 0, 500);
    auto b = RandomSet(&rng, rng() % 60, 0, 500);
    size_t truth = ReferenceIntersect(a, b);
    for (int depth = 0; depth <= 3; ++depth) {
      size_t bound = OverlapUpperBound(a.data(), a.size(), b.data(), b.size(),
                                       depth);
      EXPECT_GE(bound, truth) << "depth=" << depth;
      EXPECT_LE(bound, std::min(a.size(), b.size()));
    }
  }
}

// ------------------------------------------ bit-equality vs string path

std::vector<std::string> TestCorpus() {
  std::vector<std::string> corpus = {
      "",                        // empty -> empty gram set
      "a",                       // shorter than q
      "The Matrix (1999)",
      "the matrix",
      "  THE   MATRIX  ",        // collapses to the same normal form
      "Star Wars: Episode IV - A New Hope",
      "star wars episode iv",
      "Ein schöner Tag — naïve café",  // multi-byte UTF-8
      "数据库 систем records",          // CJK + Cyrillic bytes
      "aaaaaaaaaaaa",            // single repeated gram
      "J. R. R. Tolkien",
      "Tolkien, J.R.R.",
      "entity resolution on heterogeneous records",
      "efficient entity resolution",
  };
  std::mt19937 rng(99);
  std::uniform_int_distribution<int> ch('a', 'e');  // Narrow alphabet: overlap.
  for (int i = 0; i < 40; ++i) {
    std::string s;
    size_t len = rng() % 20;
    for (size_t j = 0; j < len; ++j) s.push_back(static_cast<char>(ch(rng)));
    corpus.push_back(s);
  }
  return corpus;
}

TEST(KernelBitEqualityTest, KernelScoresMatchStringMetricsExactly) {
  const char* bases[] = {"jaccard", "dice", "overlap", "cosine"};
  for (int k = 0; k < 4; ++k) {
    for (int q = 1; q <= 3; ++q) {
      std::string name = std::string(bases[k]) + "_q" + std::to_string(q);
      auto metric = MakeSimilarity(name);
      ASSERT_NE(metric, nullptr) << name;
      SetSimKind kind;
      ASSERT_TRUE(GramMetricKind(metric->Name(), q, &kind)) << name;

      std::vector<std::string> corpus = TestCorpus();
      // Dictionary built from only half the corpus, so the other half
      // exercises the unknown-gram (fresh id) path.
      QgramDictionary dict(q);
      for (size_t i = 0; i < corpus.size() / 2; ++i) {
        dict.Add(Normalize(corpus[i]));
      }
      dict.Freeze();
      std::vector<std::vector<uint32_t>> ids;
      ids.reserve(corpus.size());
      for (const std::string& s : corpus) ids.push_back(dict.Encode(Normalize(s)));

      for (size_t i = 0; i < corpus.size(); ++i) {
        for (size_t j = 0; j < corpus.size(); ++j) {
          double want = metric->Compute(Value(corpus[i]), Value(corpus[j]));
          double got = SetSimilarity(kind, ids[i], ids[j]);
          // Bitwise equality: the whole determinism story rests on it.
          EXPECT_EQ(want, got) << name << " i=" << i << " j=" << j << " \""
                               << corpus[i] << "\" vs \"" << corpus[j] << "\"";
        }
      }
    }
  }
}

TEST(KernelBitEqualityTest, GramMetricKindRecognizesExactlyTheKernelFamily) {
  SetSimKind kind;
  EXPECT_TRUE(GramMetricKind("jaccard_q2", 2, &kind));
  EXPECT_EQ(kind, SetSimKind::kJaccard);
  EXPECT_TRUE(GramMetricKind("hybrid(dice_q3)", 3, &kind));
  EXPECT_EQ(kind, SetSimKind::kDice);
  EXPECT_TRUE(GramMetricKind("overlap_q1", 1, &kind));
  EXPECT_EQ(kind, SetSimKind::kOverlap);
  EXPECT_TRUE(GramMetricKind("cosine_q2", 2, &kind));
  EXPECT_EQ(kind, SetSimKind::kCosine);
  // q mismatch, non-set metrics, and two-argument hybrids are rejected.
  EXPECT_FALSE(GramMetricKind("jaccard_q3", 2, &kind));
  EXPECT_FALSE(GramMetricKind("edit", 2, &kind));
  EXPECT_FALSE(GramMetricKind("jaro_winkler", 2, &kind));
  EXPECT_FALSE(GramMetricKind("hybrid(jaccard_q2,numeric)", 2, &kind));
  EXPECT_FALSE(GramMetricKind("jaccard_q22", 2, &kind));
}

TEST(KernelBitEqualityTest, GramMetricSizeParsesExactlyTheKernelFamily) {
  EXPECT_EQ(GramMetricSize("jaccard_q2"), 2);
  EXPECT_EQ(GramMetricSize("jaccard_q3"), 3);
  EXPECT_EQ(GramMetricSize("hybrid(dice_q3)"), 3);
  EXPECT_EQ(GramMetricSize("overlap_q1"), 1);
  EXPECT_EQ(GramMetricSize("cosine_q12"), 12);
  // Non-gram families and malformed suffixes map to 0.
  EXPECT_EQ(GramMetricSize("edit"), 0);
  EXPECT_EQ(GramMetricSize("jaro_winkler"), 0);
  EXPECT_EQ(GramMetricSize("hybrid(jaccard_q2,numeric)"), 0);
  EXPECT_EQ(GramMetricSize("jaccard_q"), 0);
  EXPECT_EQ(GramMetricSize("jaccard_q0"), 0);
  EXPECT_EQ(GramMetricSize("soft_tfidf_q2"), 0);  // Not a kernel metric.
}

TEST(KernelBitEqualityTest, NewMetricRegistryEntriesResolve) {
  for (const char* name : {"dice", "dice_q2", "dice_q3", "overlap",
                           "overlap_q1", "hybrid(dice_q2)"}) {
    auto metric = MakeSimilarity(name);
    ASSERT_NE(metric, nullptr) << name;
    // Symmetric sanity + self-similarity of a non-trivial string.
    Value v("heterogeneous records");
    EXPECT_EQ(metric->Compute(v, v), 1.0) << name;
  }
  EXPECT_EQ(MakeSimilarity("dice_q0"), nullptr);
  EXPECT_EQ(MakeSimilarity("overlap_qx"), nullptr);
}

// ------------------------------------------------------- PairSimCache

TEST(PairSimCacheTest, HitsMissesAndOrderSensitivity) {
  PairSimCache cache("edit");
  EXPECT_EQ(cache.metric_name(), "edit");
  int calls = 0;
  auto score = [&] { ++calls; return 0.75; };
  EXPECT_EQ(cache.GetOrCompute("abc", "abd", score), 0.75);
  EXPECT_EQ(cache.GetOrCompute("abc", "abd", score), 0.75);
  EXPECT_EQ(calls, 1);
  // Reversed arguments are a different key (asymmetric metrics).
  EXPECT_EQ(cache.GetOrCompute("abd", "abc", score), 0.75);
  EXPECT_EQ(calls, 2);
  PairSimCache::Stats s = cache.stats();
  EXPECT_EQ(s.hits, 1u);
  EXPECT_EQ(s.misses, 2u);
  EXPECT_EQ(s.entries, 2u);
}

TEST(PairSimCacheTest, LengthFramedKeysDoNotCollide) {
  PairSimCache cache("edit");
  // ("ab", "c") and ("a", "bc") concatenate identically; the length
  // frame must keep them distinct.
  cache.GetOrCompute("ab", "c", [] { return 0.1; });
  EXPECT_EQ(cache.GetOrCompute("a", "bc", [] { return 0.9; }), 0.9);
  EXPECT_EQ(cache.stats().entries, 2u);
}

TEST(PairSimCacheTest, CapacityCeilingDegradesToPassThrough) {
  PairSimCache cache("edit", /*max_entries=*/1);
  cache.GetOrCompute("a", "b", [] { return 0.5; });
  EXPECT_EQ(cache.GetOrCompute("c", "d", [] { return 0.25; }), 0.25);
  PairSimCache::Stats s = cache.stats();
  EXPECT_EQ(s.entries, 1u);
  EXPECT_EQ(s.skipped_inserts, 1u);
  // The retained entry still serves.
  cache.GetOrCompute("a", "b", [] { return -1.0; });
  EXPECT_EQ(cache.stats().hits, 1u);
  cache.Clear();
  EXPECT_EQ(cache.stats().entries, 0u);
}

// --------------------------------------------- join-level equivalence

using PairTuple = std::tuple<uint32_t, uint32_t, uint32_t, uint32_t, uint32_t,
                             uint32_t, double>;

std::vector<PairTuple> AsTuples(const std::vector<ValuePair>& pairs) {
  std::vector<PairTuple> out;
  out.reserve(pairs.size());
  for (const ValuePair& p : pairs) {
    out.push_back({p.a.rid, p.a.fid, p.a.vid, p.b.rid, p.b.fid, p.b.vid, p.sim});
  }
  return out;
}

std::vector<LabeledValue> ValuesOf(const Dataset& ds) {
  std::vector<LabeledValue> values;
  for (const Record& r : ds.records()) {
    SuperRecord sr = SuperRecord::FromRecord(r);
    for (uint32_t f = 0; f < sr.num_fields(); ++f) {
      for (uint32_t v = 0; v < sr.field(f).size(); ++v) {
        values.push_back(
            {ValueLabel{sr.rid(), f, v}, sr.field(f).value(v).value});
      }
    }
  }
  return values;
}

Dataset SmallMovies(size_t records = 90, uint64_t seed = 7) {
  MovieGeneratorConfig config;
  config.num_records = records;
  config.num_entities = records / 5;
  config.seed = seed;
  return GenerateMovieDataset(config);
}

TEST(KernelJoinTest, KernelTogglePreservesJoinOutputForEveryGramMetric) {
  Dataset ds = SmallMovies();
  std::vector<LabeledValue> values = ValuesOf(ds);
  for (const char* name :
       {"jaccard_q2", "dice_q2", "overlap_q2", "cosine_q2",
        "hybrid(jaccard_q2)"}) {
    auto metric = MakeSimilarity(name);
    ASSERT_NE(metric, nullptr) << name;
    std::vector<ValuePair> on, off;
    PrefixFilterJoin join_on;
    join_on.SetEncodedKernels(true);
    ASSERT_TRUE(join_on.Join(values, *metric, 0.5, RunGuard(), &on).ok());
    PrefixFilterJoin join_off;
    join_off.SetEncodedKernels(false);
    ASSERT_TRUE(join_off.Join(values, *metric, 0.5, RunGuard(), &off).ok());
    EXPECT_EQ(AsTuples(on), AsTuples(off)) << name;
  }
}

TEST(KernelJoinTest, KernelJoinMatchesNestedLoopOracleForJaccard) {
  // String values only: the filter stack's exactness claim is for
  // q-gram Jaccard over strings (the numeric sweep handles numbers and
  // intentionally never cross-compares a number against a string,
  // unlike the type-blind oracle).
  Dataset ds = SmallMovies(70, 3);
  std::vector<LabeledValue> values;
  for (LabeledValue& lv : ValuesOf(ds)) {
    if (lv.value.is_string()) values.push_back(std::move(lv));
  }
  auto metric = MakeSimilarity("jaccard_q2");
  ASSERT_NE(metric, nullptr);
  std::vector<ValuePair> oracle_out, fast_out;
  NestedLoopJoin oracle;
  ASSERT_TRUE(oracle.Join(values, *metric, 0.5, RunGuard(), &oracle_out).ok());
  PrefixFilterJoin fast;
  ASSERT_TRUE(fast.Join(values, *metric, 0.5, RunGuard(), &fast_out).ok());
  // The joins may orient an unordered pair differently; canonicalize
  // before comparing sets.
  auto canon = [](std::vector<ValuePair> pairs) {
    for (ValuePair& p : pairs) {
      if (std::tie(p.b.rid, p.b.fid, p.b.vid) <
          std::tie(p.a.rid, p.a.fid, p.a.vid)) {
        std::swap(p.a, p.b);
      }
    }
    std::vector<PairTuple> v = AsTuples(pairs);
    std::sort(v.begin(), v.end());
    return v;
  };
  EXPECT_EQ(canon(oracle_out), canon(fast_out));
}

TEST(KernelJoinTest, FilterCountersAreConsistent) {
  Dataset ds = SmallMovies(120, 17);
  std::vector<LabeledValue> values = ValuesOf(ds);
  auto metric = MakeSimilarity("hybrid(jaccard_q2)");
  std::vector<ValuePair> out;
  JoinReport report;
  PrefixFilterJoin join;
  ASSERT_TRUE(join.Join(values, *metric, 0.5, RunGuard(), &out, &report).ok());
  EXPECT_EQ(report.emitted, out.size());
  EXPECT_GE(report.candidates, report.verified);
  EXPECT_GE(report.verified, report.emitted);
  // The exact-jaccard filter stack should actually prune something on
  // real data, and every encountered pair lands in exactly one bucket.
  EXPECT_GT(report.pruned_length + report.pruned_positional +
                report.pruned_suffix,
            0u);

  // With kernels off the positional/suffix filters are disarmed.
  std::vector<ValuePair> out_off;
  JoinReport report_off;
  PrefixFilterJoin join_off;
  join_off.SetEncodedKernels(false);
  ASSERT_TRUE(
      join_off.Join(values, *metric, 0.5, RunGuard(), &out_off, &report_off).ok());
  EXPECT_EQ(report_off.pruned_positional, 0u);
  EXPECT_EQ(report_off.pruned_suffix, 0u);
  EXPECT_EQ(AsTuples(out), AsTuples(out_off));
}

TEST(KernelJoinTest, PairCacheServesRepeatVerificationsUnchanged) {
  Dataset ds = SmallMovies(80, 5);
  std::vector<LabeledValue> values = ValuesOf(ds);
  // edit is not kernel-eligible, so verification goes through the
  // metric — and through the cache when one is installed.
  auto metric = MakeSimilarity("edit");
  ASSERT_NE(metric, nullptr);
  std::vector<ValuePair> plain, cached1, cached2;
  PrefixFilterJoin join;
  ASSERT_TRUE(join.Join(values, *metric, 0.6, RunGuard(), &plain).ok());
  PrefixFilterJoin cjoin;
  auto cache = std::make_shared<PairSimCache>(metric->Name());
  cjoin.SetPairSimCache(cache);
  ASSERT_TRUE(cjoin.Join(values, *metric, 0.6, RunGuard(), &cached1).ok());
  ASSERT_TRUE(cjoin.Join(values, *metric, 0.6, RunGuard(), &cached2).ok());
  EXPECT_EQ(AsTuples(plain), AsTuples(cached1));
  EXPECT_EQ(AsTuples(cached1), AsTuples(cached2));
  PairSimCache::Stats s = cache->stats();
  EXPECT_GT(s.misses, 0u);
  EXPECT_GT(s.hits, 0u);  // Second join is served from the cache.
}

TEST(KernelJoinTest, MismatchedCacheMetricIsIgnored) {
  Dataset ds = SmallMovies(60, 9);
  std::vector<LabeledValue> values = ValuesOf(ds);
  auto metric = MakeSimilarity("edit");
  PrefixFilterJoin join;
  auto cache = std::make_shared<PairSimCache>("jaro_winkler");
  join.SetPairSimCache(cache);
  std::vector<ValuePair> out;
  ASSERT_TRUE(join.Join(values, *metric, 0.6, RunGuard(), &out).ok());
  // Name mismatch: the cache must never be consulted.
  EXPECT_EQ(cache->stats().hits + cache->stats().misses, 0u);
}

// ------------------------------------------------ engine determinism

struct RunSignature {
  std::vector<uint32_t> labels;
  std::vector<std::pair<uint32_t, uint32_t>> merge_sequence;
  size_t merges, comparisons, iterations;
};

RunSignature SignatureOf(const HeraResult& result) {
  return {result.entity_of, result.stats.merge_sequence, result.stats.merges,
          result.stats.comparisons, result.stats.iterations};
}

void ExpectSameSignature(const RunSignature& a, const RunSignature& b,
                         const std::string& what) {
  EXPECT_EQ(a.labels, b.labels) << what;
  EXPECT_EQ(a.merge_sequence, b.merge_sequence) << what;
  EXPECT_EQ(a.merges, b.merges) << what;
  EXPECT_EQ(a.comparisons, b.comparisons) << what;
  EXPECT_EQ(a.iterations, b.iterations) << what;
}

TEST(KernelEngineTest, KnobsAndThreadsNeverChangeTheRun) {
  MovieGeneratorConfig mconfig;
  mconfig.num_records = 220;
  mconfig.num_entities = 44;
  mconfig.seed = 7;
  PublicationGeneratorConfig pconfig;
  pconfig.num_records = 180;
  pconfig.num_entities = 45;
  pconfig.seed = 11;
  const Dataset datasets[] = {GenerateMovieDataset(mconfig),
                              GeneratePublicationDataset(pconfig)};
  for (const Dataset& ds : datasets) {
    HeraOptions base;  // kernels on, pair cache on, serial.
    auto want_result = Hera(base).Run(ds);
    ASSERT_TRUE(want_result.ok());
    ASSERT_GT(want_result->stats.merges, 0u);
    RunSignature want = SignatureOf(*want_result);
    struct Config {
      size_t threads;
      bool kernels;
      bool cache;
    };
    const Config configs[] = {
        {0, false, true},  {0, true, false}, {0, false, false},
        {4, true, true},   {4, false, true}, {4, true, false},
        {8, true, true},   {8, false, false},
    };
    for (const Config& c : configs) {
      HeraOptions opts;
      opts.num_threads = c.threads;
      opts.use_encoded_kernels = c.kernels;
      opts.enable_pair_sim_cache = c.cache;
      auto got = Hera(opts).Run(ds);
      ASSERT_TRUE(got.ok());
      ExpectSameSignature(
          want, SignatureOf(*got),
          "threads=" + std::to_string(c.threads) +
              " kernels=" + std::to_string(c.kernels) +
              " cache=" + std::to_string(c.cache));
    }
  }
}

TEST(KernelEngineTest, DispatchTierNeverChangesTheRun) {
  MovieGeneratorConfig mconfig;
  mconfig.num_records = 200;
  mconfig.num_entities = 40;
  mconfig.seed = 3;
  PublicationGeneratorConfig pconfig;
  pconfig.num_records = 160;
  pconfig.num_entities = 40;
  pconfig.seed = 19;
  const Dataset datasets[] = {GenerateMovieDataset(mconfig),
                              GeneratePublicationDataset(pconfig)};
  for (const Dataset& ds : datasets) {
    HeraOptions base;
    base.kernel_dispatch = KernelDispatch::kScalar;
    auto want_result = Hera(base).Run(ds);
    ASSERT_TRUE(want_result.ok());
    ASSERT_GT(want_result->stats.merges, 0u);
    RunSignature want = SignatureOf(*want_result);
    for (KernelDispatch tier : kSweepTiers) {
      for (size_t threads : {size_t{0}, size_t{4}, size_t{8}}) {
        for (IndexBackend backend :
             {IndexBackend::kOrdered, IndexBackend::kFlat}) {
          HeraOptions opts;
          opts.kernel_dispatch = tier;
          opts.num_threads = threads;
          opts.index_backend = backend;
          auto got = Hera(opts).Run(ds);
          ASSERT_TRUE(got.ok());
          ExpectSameSignature(
              want, SignatureOf(*got),
              std::string("tier=") + KernelDispatchToString(tier) +
                  " threads=" + std::to_string(threads) + " backend=" +
                  (backend == IndexBackend::kFlat ? "flat" : "ordered"));
        }
      }
    }
  }
  // Leave the process-global tier back at auto for the other tests.
  SetActiveKernelDispatch(KernelDispatch::kAuto);
}

TEST(KernelEngineTest, EditMetricRunIdenticalAcrossTiers) {
  // Routes the Myers kernel through a whole resolution: the edit
  // metric's verification path and the baselines' dense loops.
  MovieGeneratorConfig config;
  config.num_records = 140;
  config.num_entities = 28;
  config.seed = 23;
  Dataset ds = GenerateMovieDataset(config);
  HeraOptions base;
  base.metric = "edit";
  base.xi = 0.6;
  base.kernel_dispatch = KernelDispatch::kScalar;
  auto want_result = Hera(base).Run(ds);
  ASSERT_TRUE(want_result.ok());
  ASSERT_GT(want_result->stats.merges, 0u);
  RunSignature want = SignatureOf(*want_result);
  for (KernelDispatch tier :
       {KernelDispatch::kSse4, KernelDispatch::kAvx2, KernelDispatch::kAuto}) {
    HeraOptions opts;
    opts.metric = "edit";
    opts.xi = 0.6;
    opts.kernel_dispatch = tier;
    auto got = Hera(opts).Run(ds);
    ASSERT_TRUE(got.ok());
    ExpectSameSignature(want, SignatureOf(*got),
                        std::string("edit tier=") +
                            KernelDispatchToString(tier));
  }
  SetActiveKernelDispatch(KernelDispatch::kAuto);
}

TEST(KernelEngineTest, Q3MetricArmsKernelsAndStaysLossless) {
  // q = 3 metrics index at their own gram size (GramMetricSize), which
  // arms the encoded kernels and the exact PPJoin+ filters. The trigram
  // universe outgrows the bitmap window, so this is also the path where
  // a whole resolution actually reaches the SIMD merge kernel.
  PublicationGeneratorConfig config;
  config.num_records = 260;
  config.num_entities = 52;
  config.seed = 31;
  Dataset ds = GeneratePublicationDataset(config);
  HeraOptions base;
  base.metric = "jaccard_q3";
  base.kernel_dispatch = KernelDispatch::kScalar;
  auto want_result = Hera(base).Run(ds);
  ASSERT_TRUE(want_result.ok());
  ASSERT_GT(want_result->stats.merges, 0u);
  RunSignature want = SignatureOf(*want_result);
  // The prefix-filter join at q = 3 is lossless: the O(n^2) oracle
  // resolves to the same labels.
  {
    HeraOptions oracle;
    oracle.metric = "jaccard_q3";
    oracle.use_prefix_filter_join = false;
    auto got = Hera(oracle).Run(ds);
    ASSERT_TRUE(got.ok());
    EXPECT_EQ(want.labels, SignatureOf(*got).labels) << "nested-loop oracle";
  }
  for (KernelDispatch tier : kSweepTiers) {
    HeraOptions opts;
    opts.metric = "jaccard_q3";
    opts.kernel_dispatch = tier;
    uint64_t before = KernelCountersNow().simd_intersections;
    auto got = Hera(opts).Run(ds);
    ASSERT_TRUE(got.ok());
    ExpectSameSignature(want, SignatureOf(*got),
                        std::string("jaccard_q3 tier=") +
                            KernelDispatchToString(tier));
    // On a vector tier the trigram sets actually reach the SIMD merge.
    if (ResolveKernelDispatch(tier) != KernelDispatch::kScalar) {
      EXPECT_GT(KernelCountersNow().simd_intersections, before)
          << KernelDispatchToString(tier);
    }
  }
  SetActiveKernelDispatch(KernelDispatch::kAuto);
}

// --------------------------------------- dense weight loops (baselines)

/// Random value mix: strings from the shared corpus, numbers, nulls.
std::vector<Value> RandomValues(std::mt19937* rng,
                                const std::vector<std::string>& corpus,
                                size_t n) {
  std::vector<Value> out;
  out.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    switch ((*rng)() % 5) {
      case 0:
        out.push_back(Value(static_cast<double>((*rng)() % 2000)));
        break;
      case 1:
        out.push_back(Value());  // null
        break;
      default:
        out.push_back(Value(corpus[(*rng)() % corpus.size()]));
        break;
    }
  }
  return out;
}

/// The loop BestPairScorer replaces, verbatim.
double BruteBest(const std::vector<Value>& a, const std::vector<Value>& b,
                 const ValueSimilarity& simv) {
  double best = 0.0;
  for (const Value& va : a) {
    for (const Value& vb : b) best = std::max(best, simv.Compute(va, vb));
  }
  return best;
}

TEST(BestPairScorerTest, ExactWheneverMaxReachesFloor) {
  const char* metrics[] = {"jaccard_q2", "dice_q2", "overlap_q3",
                           "hybrid(jaccard_q2)", "edit", "hybrid(edit)"};
  const std::vector<std::string> corpus = TestCorpus();
  for (const char* name : metrics) {
    auto simv = MakeSimilarity(name);
    ASSERT_NE(simv, nullptr) << name;
    BestPairScorer scorer(*simv);
    std::mt19937 rng(7);
    for (int trial = 0; trial < 60; ++trial) {
      std::vector<Value> a = RandomValues(&rng, corpus, 1 + rng() % 6);
      std::vector<Value> b = RandomValues(&rng, corpus, 1 + rng() % 6);
      double want = BruteBest(a, b, *simv);
      for (double floor : {0.0, 0.3, 0.5, 0.9}) {
        double got = scorer.BestAtLeast(a, b, floor);
        if (want >= floor) {
          // Bitwise, not approximate: the kernel evaluates the same
          // floating-point expression as the string metric.
          EXPECT_EQ(got, want) << name << " floor=" << floor;
        } else {
          EXPECT_LT(got, floor) << name << " floor=" << floor;
        }
      }
    }
  }
}

TEST(BestPairScorerTest, KernelDetectionMatchesTheMetricFamily) {
  EXPECT_TRUE(BestPairScorer(*MakeSimilarity("jaccard_q2")).kernel_active());
  EXPECT_TRUE(BestPairScorer(*MakeSimilarity("cosine_q3")).kernel_active());
  EXPECT_TRUE(
      BestPairScorer(*MakeSimilarity("hybrid(dice_q2)")).kernel_active());
  EXPECT_FALSE(BestPairScorer(*MakeSimilarity("edit")).kernel_active());
  EXPECT_FALSE(BestPairScorer(*MakeSimilarity("jaro_winkler")).kernel_active());
  EXPECT_FALSE(
      BestPairScorer(*MakeSimilarity("jaccard_q2"), false).kernel_active());
  // Edit-family metrics take the bounded Myers path instead.
  EXPECT_TRUE(BestPairScorer(*MakeSimilarity("edit")).edit_active());
  EXPECT_TRUE(BestPairScorer(*MakeSimilarity("hybrid(edit)")).edit_active());
  EXPECT_FALSE(BestPairScorer(*MakeSimilarity("edit"), false).edit_active());
  EXPECT_FALSE(BestPairScorer(*MakeSimilarity("jaccard_q2")).edit_active());
}

TEST(BestPairScorerTest, ClusterSimilarityIdenticalWithScorerOnAndOff) {
  const std::vector<std::string> corpus = TestCorpus();
  auto simv = MakeSimilarity("hybrid(jaccard_q2)");
  BestPairScorer on(*simv, true);
  BestPairScorer off(*simv, false);
  std::mt19937 rng(13);
  for (int trial = 0; trial < 40; ++trial) {
    // Two members per cluster so attributes hold several values each.
    HomogeneousCluster ca = HomogeneousCluster::FromRecord(
        Record(0, 0, RandomValues(&rng, corpus, 4)));
    ca.Absorb(HomogeneousCluster::FromRecord(
        Record(2, 0, RandomValues(&rng, corpus, 4))));
    HomogeneousCluster cb = HomogeneousCluster::FromRecord(
        Record(1, 0, RandomValues(&rng, corpus, 4)));
    cb.Absorb(HomogeneousCluster::FromRecord(
        Record(3, 0, RandomValues(&rng, corpus, 4))));
    for (double xi : {0.3, 0.5, 0.8}) {
      EXPECT_EQ(ClusterSimilarity(ca, cb, on, xi),
                ClusterSimilarity(ca, cb, off, xi));
    }
  }
}

TEST(BestPairScorerTest, TokenBlockingLabelsUnchangedByKernelToggle) {
  MovieGeneratorConfig config;
  config.num_records = 150;
  config.num_entities = 30;
  config.seed = 21;
  Dataset ds = GenerateMovieDataset(config);
  auto simv = MakeSimilarity("hybrid(jaccard_q2)");
  TokenBlockingEROptions on;
  TokenBlockingEROptions off;
  off.use_encoded_kernels = false;
  EXPECT_EQ(TokenBlockingER(ds, *simv, on), TokenBlockingER(ds, *simv, off));
}

}  // namespace
}  // namespace hera
