// Tests for the logging and timer utilities.

#include <gtest/gtest.h>

#include <regex>
#include <thread>

#include "common/logging.h"
#include "common/timer.h"

namespace hera {
namespace {

class LogLevelGuard {
 public:
  LogLevelGuard() : saved_(GetLogLevel()) {}
  ~LogLevelGuard() { SetLogLevel(saved_); }

 private:
  LogLevel saved_;
};

TEST(LoggingTest, DefaultLevelIsWarning) {
  LogLevelGuard guard;
  SetLogLevel(LogLevel::kWarning);
  EXPECT_EQ(GetLogLevel(), LogLevel::kWarning);
}

TEST(LoggingTest, LevelRoundTrips) {
  LogLevelGuard guard;
  for (LogLevel level : {LogLevel::kDebug, LogLevel::kInfo, LogLevel::kWarning,
                         LogLevel::kError, LogLevel::kOff}) {
    SetLogLevel(level);
    EXPECT_EQ(GetLogLevel(), level);
  }
}

TEST(LoggingTest, SuppressedMessagesDoNotCrash) {
  LogLevelGuard guard;
  SetLogLevel(LogLevel::kOff);
  // Streaming into a disabled message must be a safe no-op.
  HERA_LOG(Error) << "suppressed " << 42 << " entirely";
  HERA_LOG(Debug) << "also suppressed";
}

TEST(LoggingTest, CapturesStderrOutput) {
  LogLevelGuard guard;
  SetLogLevel(LogLevel::kInfo);
  ::testing::internal::CaptureStderr();
  HERA_LOG(Info) << "hello " << 7;
  std::string got = ::testing::internal::GetCapturedStderr();
  EXPECT_NE(got.find("INFO"), std::string::npos);
  EXPECT_NE(got.find("hello 7"), std::string::npos);
  EXPECT_NE(got.find("logging_timer_test"), std::string::npos);  // Basename.
}

TEST(LoggingTest, LinesCarryTimestampAndThreadId) {
  LogLevelGuard guard;
  SetLogLevel(LogLevel::kInfo);
  ::testing::internal::CaptureStderr();
  HERA_LOG(Info) << "stamped";
  std::string got = ::testing::internal::GetCapturedStderr();
  // ISO-8601 UTC with millisecond precision: ....-..-..T..:..:...sssZ
  std::regex ts(R"(\[\d{4}-\d{2}-\d{2}T\d{2}:\d{2}:\d{2}\.\d{3}Z )");
  EXPECT_TRUE(std::regex_search(got, ts)) << got;
  EXPECT_NE(got.find(" tid:"), std::string::npos) << got;
}

TEST(LoggingTest, ParseLogLevelAcceptsKnownNames) {
  LogLevel level;
  EXPECT_TRUE(ParseLogLevel("debug", &level));
  EXPECT_EQ(level, LogLevel::kDebug);
  EXPECT_TRUE(ParseLogLevel("INFO", &level));  // Case-insensitive.
  EXPECT_EQ(level, LogLevel::kInfo);
  EXPECT_TRUE(ParseLogLevel("warning", &level));
  EXPECT_EQ(level, LogLevel::kWarning);
  EXPECT_TRUE(ParseLogLevel("Warn", &level));
  EXPECT_EQ(level, LogLevel::kWarning);
  EXPECT_TRUE(ParseLogLevel("error", &level));
  EXPECT_EQ(level, LogLevel::kError);
  EXPECT_TRUE(ParseLogLevel("off", &level));
  EXPECT_EQ(level, LogLevel::kOff);
}

TEST(LoggingTest, ParseLogLevelRejectsUnknownNames) {
  LogLevel level = LogLevel::kError;
  EXPECT_FALSE(ParseLogLevel("verbose", &level));
  EXPECT_FALSE(ParseLogLevel("", &level));
  EXPECT_EQ(level, LogLevel::kError);  // Untouched on failure.
}

TEST(LoggingTest, BelowThresholdProducesNoOutput) {
  LogLevelGuard guard;
  SetLogLevel(LogLevel::kError);
  ::testing::internal::CaptureStderr();
  HERA_LOG(Info) << "should not appear";
  EXPECT_TRUE(::testing::internal::GetCapturedStderr().empty());
}

TEST(TimerTest, MeasuresElapsedTime) {
  Timer t;
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  double ms = t.ElapsedMillis();
  EXPECT_GE(ms, 15.0);
  EXPECT_LT(ms, 2000.0);
}

TEST(TimerTest, UnitsAreConsistent) {
  Timer t;
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  double micros = t.ElapsedMicros();
  double millis = t.ElapsedMillis();
  double seconds = t.ElapsedSeconds();
  EXPECT_NEAR(micros / 1000.0, millis, millis * 0.5 + 1.0);
  EXPECT_NEAR(millis / 1000.0, seconds, seconds * 0.5 + 0.001);
}

TEST(TimerTest, RestartResets) {
  Timer t;
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  t.Restart();
  EXPECT_LT(t.ElapsedMillis(), 15.0);
}

}  // namespace
}  // namespace hera
