// Tests for src/matching: Kuhn–Munkres correctness against brute
// force, graph simplification optimality (Theorem 1), greedy baseline.

#include <gtest/gtest.h>

#include <algorithm>
#include <functional>
#include <numeric>
#include <vector>

#include "common/random.h"
#include "matching/bipartite.h"

namespace hera {
namespace {

double BruteForceAssignment(const std::vector<std::vector<double>>& w) {
  const size_t n = w.size();
  std::vector<size_t> perm(n);
  std::iota(perm.begin(), perm.end(), 0);
  double best = 0.0;
  do {
    double total = 0.0;
    for (size_t i = 0; i < n; ++i) total += w[i][perm[i]];
    best = std::max(best, total);
  } while (std::next_permutation(perm.begin(), perm.end()));
  return best;
}

double WeightOf(const std::vector<std::vector<double>>& w,
                const std::vector<uint32_t>& match) {
  double total = 0.0;
  for (size_t i = 0; i < match.size(); ++i) total += w[i][match[i]];
  return total;
}

TEST(KuhnMunkresTest, EmptyMatrix) {
  EXPECT_TRUE(KuhnMunkres({}).empty());
}

TEST(KuhnMunkresTest, SingleCell) {
  auto m = KuhnMunkres({{0.7}});
  ASSERT_EQ(m.size(), 1u);
  EXPECT_EQ(m[0], 0u);
}

TEST(KuhnMunkresTest, PicksCrossDiagonalWhenBetter) {
  // w = [[1, 5], [5, 1]] -> match 0-1 and 1-0, weight 10.
  auto m = KuhnMunkres({{1.0, 5.0}, {5.0, 1.0}});
  EXPECT_EQ(m[0], 1u);
  EXPECT_EQ(m[1], 0u);
}

TEST(KuhnMunkresTest, IsPermutation) {
  auto m = KuhnMunkres({{0.2, 0.8, 0.1}, {0.5, 0.5, 0.5}, {0.9, 0.1, 0.3}});
  std::vector<uint32_t> sorted = m;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_EQ(sorted, (std::vector<uint32_t>{0, 1, 2}));
}

class KuhnMunkresPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(KuhnMunkresPropertyTest, MatchesBruteForceOptimum) {
  Rng rng(GetParam());
  for (int trial = 0; trial < 60; ++trial) {
    size_t n = 1 + rng.Uniform(6);  // Up to 6x6: brute force feasible.
    std::vector<std::vector<double>> w(n, std::vector<double>(n));
    for (auto& row : w) {
      for (auto& x : row) x = rng.UniformDouble();
    }
    auto m = KuhnMunkres(w);
    EXPECT_NEAR(WeightOf(w, m), BruteForceAssignment(w), 1e-9)
        << "n=" << n << " trial=" << trial;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, KuhnMunkresPropertyTest,
                         ::testing::Values(7, 13, 29, 41));

// ------------------------------------------------- SolveFieldMatching

double BruteForceEdges(const std::vector<WeightedEdge>& edges) {
  // Recursion over edges: include (if endpoints free) or skip.
  std::function<double(size_t, uint64_t, uint64_t)> go =
      [&](size_t i, uint64_t used_l, uint64_t used_r) -> double {
    if (i == edges.size()) return 0.0;
    double best = go(i + 1, used_l, used_r);
    const WeightedEdge& e = edges[i];
    if (!(used_l >> e.left & 1) && !(used_r >> e.right & 1)) {
      best = std::max(best, e.weight + go(i + 1, used_l | (1ull << e.left),
                                          used_r | (1ull << e.right)));
    }
    return best;
  };
  return go(0, 0, 0);
}

TEST(SolveFieldMatchingTest, EmptyEdges) {
  MatchingResult r = SolveFieldMatching({});
  EXPECT_TRUE(r.matching.empty());
  EXPECT_DOUBLE_EQ(r.total_weight, 0.0);
}

TEST(SolveFieldMatchingTest, SingleEdgeIsMappedEdge) {
  MatchingResult r = SolveFieldMatching({{0, 0, 0.9}});
  ASSERT_EQ(r.matching.size(), 1u);
  EXPECT_EQ(r.mapped_edges, 1u);
  EXPECT_EQ(r.simplified_nodes, 0u);  // Nothing left for KM.
  EXPECT_DOUBLE_EQ(r.total_weight, 0.9);
}

TEST(SolveFieldMatchingTest, SimplificationRemovesIsolatedPairs) {
  // Edges (0,0) and (1,1) are both degree-1/degree-1; (2,2)-(2,3)-(3,2)
  // form a conflicted core for KM.
  std::vector<WeightedEdge> edges = {
      {0, 0, 0.5}, {1, 1, 0.6}, {2, 2, 0.9}, {2, 3, 0.8}, {3, 2, 0.7}};
  MatchingResult r = SolveFieldMatching(edges);
  EXPECT_EQ(r.mapped_edges, 2u);
  EXPECT_EQ(r.simplified_nodes, 4u);  // {2,3} x {2,3}.
  // Optimum: 0.5 + 0.6 + 0.9 (2-2) + ... 3-2 conflicts with 2-2; best
  // core is 0.9 + nothing vs 0.8 + 0.7 = 1.5 -> core 1.5.
  EXPECT_NEAR(r.total_weight, 0.5 + 0.6 + 1.5, 1e-9);
}

TEST(SolveFieldMatchingTest, OneToOneOutput) {
  Rng rng(5);
  std::vector<WeightedEdge> edges;
  for (uint32_t l = 0; l < 5; ++l) {
    for (uint32_t r = 0; r < 5; ++r) {
      if (rng.Bernoulli(0.6)) edges.push_back({l, r, rng.UniformDouble()});
    }
  }
  MatchingResult result = SolveFieldMatching(edges);
  std::vector<bool> seen_l(5, false), seen_r(5, false);
  for (const auto& e : result.matching) {
    EXPECT_FALSE(seen_l[e.left]);
    EXPECT_FALSE(seen_r[e.right]);
    seen_l[e.left] = seen_r[e.right] = true;
  }
}

TEST(SolveFieldMatchingTest, ParallelEdgesKeepMaxWeight) {
  MatchingResult r =
      SolveFieldMatching({{0, 0, 0.3}, {0, 0, 0.8}, {0, 0, 0.5}});
  ASSERT_EQ(r.matching.size(), 1u);
  EXPECT_DOUBLE_EQ(r.total_weight, 0.8);
}

class FieldMatchingPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(FieldMatchingPropertyTest, OptimalWithAndWithoutSimplification) {
  // Theorem 1: simplification preserves optimality. Verify against
  // exhaustive search on random sparse graphs.
  Rng rng(GetParam());
  for (int trial = 0; trial < 40; ++trial) {
    std::vector<WeightedEdge> edges;
    uint32_t nl = 1 + static_cast<uint32_t>(rng.Uniform(5));
    uint32_t nr = 1 + static_cast<uint32_t>(rng.Uniform(5));
    for (uint32_t l = 0; l < nl; ++l) {
      for (uint32_t r = 0; r < nr; ++r) {
        if (rng.Bernoulli(0.35)) {
          edges.push_back({l, r, 0.05 + 0.95 * rng.UniformDouble()});
        }
      }
    }
    MatchingResult got = SolveFieldMatching(edges);
    EXPECT_NEAR(got.total_weight, BruteForceEdges(edges), 1e-9)
        << "trial=" << trial;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FieldMatchingPropertyTest,
                         ::testing::Values(3, 17, 23, 31, 47));

TEST(GreedyMatchingTest, NeverExceedsOptimal) {
  Rng rng(19);
  for (int trial = 0; trial < 30; ++trial) {
    std::vector<WeightedEdge> edges;
    for (uint32_t l = 0; l < 4; ++l) {
      for (uint32_t r = 0; r < 4; ++r) {
        if (rng.Bernoulli(0.5)) edges.push_back({l, r, rng.UniformDouble()});
      }
    }
    MatchingResult greedy = GreedyMatching(edges);
    MatchingResult optimal = SolveFieldMatching(edges);
    EXPECT_LE(greedy.total_weight, optimal.total_weight + 1e-9);
  }
}

TEST(GreedyMatchingTest, PicksHeaviestFirst) {
  MatchingResult r = GreedyMatching({{0, 0, 0.5}, {0, 1, 0.9}, {1, 1, 0.8}});
  // Greedy takes (0,1,0.9), blocking (1,1); then (0,0) blocked too...
  // (0,0) shares left node 0 -> skipped; (1,1) shares right 1 -> skipped.
  ASSERT_EQ(r.matching.size(), 1u);
  EXPECT_DOUBLE_EQ(r.total_weight, 0.9);
}

}  // namespace
}  // namespace hera
