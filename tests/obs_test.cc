// Tests for the observability subsystem: JSON writer, metrics
// primitives and registry (including concurrency), tracer spans and
// events, the exporters, and the engine integration behind
// HeraOptions::collect_report.

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <limits>
#include <string>
#include <thread>
#include <vector>

#include "common/failpoint.h"
#include "common/run_guard.h"
#include "core/hera.h"
#include "core/incremental.h"
#include "obs/json.h"
#include "obs/json_reader.h"
#include "obs/metrics.h"
#include "obs/perfetto.h"
#include "obs/report.h"
#include "obs/timeline.h"
#include "obs/trace.h"
#include "testing_util.h"

namespace hera {
namespace {

// ---------------------------------------------------------------- JSON

TEST(JsonWriterTest, GoldenObject) {
  obs::JsonWriter w;
  w.BeginObject()
      .Key("n").Int(3)
      .Key("xs").BeginArray().Number(1.5).Null().EndArray()
      .Key("s").String("hi")
      .Key("b").Bool(true)
      .EndObject();
  EXPECT_EQ(w.str(), R"({"n":3,"xs":[1.5,null],"s":"hi","b":true})");
}

TEST(JsonWriterTest, NonFiniteNumbersBecomeNull) {
  obs::JsonWriter w;
  w.BeginArray()
      .Number(std::numeric_limits<double>::quiet_NaN())
      .Number(std::numeric_limits<double>::infinity())
      .Number(-std::numeric_limits<double>::infinity())
      .Number(2.0)
      .EndArray();
  EXPECT_EQ(w.str(), "[null,null,null,2]");
}

TEST(JsonWriterTest, IntegralDoublesPrintWithoutExponent) {
  obs::JsonWriter w;
  w.BeginArray().Number(8071.0).Number(0.0).Number(-3.0).EndArray();
  EXPECT_EQ(w.str(), "[8071,0,-3]");
}

TEST(JsonWriterTest, EscapesControlCharactersAndQuotes) {
  EXPECT_EQ(obs::JsonEscape("a\"b\\c\nd\te"), "a\\\"b\\\\c\\nd\\te");
  EXPECT_EQ(obs::JsonEscape(std::string("\x01", 1)), "\\u0001");
}

TEST(JsonWriterTest, EmptyContainers) {
  obs::JsonWriter w;
  w.BeginObject().Key("a").BeginArray().EndArray().Key("o").BeginObject()
      .EndObject().EndObject();
  EXPECT_EQ(w.str(), R"({"a":[],"o":{}})");
}

// --------------------------------------------------------- JSON reader

TEST(JsonReaderTest, ParsesScalarsAndContainers) {
  auto v = obs::ParseJson(R"( {"n": 3, "x": -1.5e2, "b": true,
                               "s": "hi", "z": null,
                               "a": [1, [2], {}]} )");
  ASSERT_TRUE(v.ok()) << v.status().ToString();
  ASSERT_TRUE(v->is_object());
  EXPECT_DOUBLE_EQ(v->Find("n")->number_value, 3.0);
  EXPECT_DOUBLE_EQ(v->Find("x")->number_value, -150.0);
  EXPECT_TRUE(v->Find("b")->bool_value);
  EXPECT_EQ(v->Find("s")->string_value, "hi");
  EXPECT_TRUE(v->Find("z")->is_null());
  const obs::JsonValue* a = v->Find("a");
  ASSERT_TRUE(a->is_array());
  ASSERT_EQ(a->items.size(), 3u);
  EXPECT_TRUE(a->items[1].is_array());
  EXPECT_TRUE(a->items[2].is_object());
  EXPECT_EQ(v->Find("missing"), nullptr);
}

TEST(JsonReaderTest, RoundTripsWriterOutput) {
  obs::JsonWriter w;
  w.BeginObject()
      .Key("esc").String("a\"b\\c\nd\te")
      .Key("nums").BeginArray().Number(0.0).Number(-3.25).UInt(1u << 30)
      .EndArray()
      .EndObject();
  auto v = obs::ParseJson(w.str());
  ASSERT_TRUE(v.ok()) << v.status().ToString();
  EXPECT_EQ(v->Find("esc")->string_value, "a\"b\\c\nd\te");
  EXPECT_DOUBLE_EQ(v->Find("nums")->items[2].number_value,
                   static_cast<double>(1u << 30));
}

TEST(JsonReaderTest, UnicodeEscapesDecodeToUtf8) {
  // "café " (U+00E9) + an emoji via a surrogate pair (U+1F600).
  auto v = obs::ParseJson("\"caf\\u00e9 \\uD83D\\uDE00\"");
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v->string_value, "caf\xC3\xA9 \xF0\x9F\x98\x80");
  EXPECT_FALSE(obs::ParseJson(R"("\uD83D")").ok());   // Unpaired high.
  EXPECT_FALSE(obs::ParseJson(R"("\uDE00")").ok());   // Unpaired low.
}

TEST(JsonReaderTest, RejectsMalformedInput) {
  for (const char* bad :
       {"", "{", "[1,]", "{\"a\":}", "{\"a\" 1}", "tru", "1 2", "\"x",
        "[1] garbage", "-", "1.", "1e", "'single'", "{\"a\":1,}"}) {
    EXPECT_FALSE(obs::ParseJson(bad).ok()) << "accepted: " << bad;
  }
  // Parse errors carry a position.
  auto err = obs::ParseJson("[1, oops]");
  ASSERT_FALSE(err.ok());
  EXPECT_NE(err.status().ToString().find("offset"), std::string::npos);
}

TEST(JsonReaderTest, DepthLimitIsEnforcedNotCrashed) {
  std::string deep(300, '[');
  deep += std::string(300, ']');
  EXPECT_FALSE(obs::ParseJson(deep).ok());
  std::string ok(100, '[');
  ok += std::string(100, ']');
  EXPECT_TRUE(obs::ParseJson(ok).ok());
}

TEST(JsonReaderTest, FindPathWalksNestedObjects) {
  auto v = obs::ParseJson(R"({"stats": {"verify": {"speedup": 14.2}}})");
  ASSERT_TRUE(v.ok());
  const obs::JsonValue* s = v->FindPath("stats.verify.speedup");
  ASSERT_NE(s, nullptr);
  EXPECT_DOUBLE_EQ(s->number_value, 14.2);
  EXPECT_EQ(v->FindPath("stats.nope.speedup"), nullptr);
  EXPECT_EQ(v->FindPath("stats.verify.speedup.deeper"), nullptr);
}

// ------------------------------------------------------------ timeline

TEST(TimelineTest, RingOverflowDropsOldestAndCounts) {
  obs::TimelineSeries series(4);
  for (int i = 0; i < 10; ++i) {
    obs::TimelineSample s;
    s.t_ms = static_cast<double>(i);
    series.Push(std::move(s));
  }
  EXPECT_EQ(series.size(), 4u);
  EXPECT_EQ(series.dropped(), 6u);
  auto samples = series.Samples();
  ASSERT_EQ(samples.size(), 4u);
  // Chronological and holding the newest four.
  EXPECT_DOUBLE_EQ(samples.front().t_ms, 6.0);
  EXPECT_DOUBLE_EQ(samples.back().t_ms, 9.0);
}

TEST(TimelineTest, SamplerTakesEdgeSamplesAndFreezesColumns) {
  obs::TimelineSeries series(64);
  obs::TimelineSampler::Options sopts;
  sopts.interval_ms = 10000;  // No periodic tick during the test.
  double clock = 0.0;
  obs::TimelineSampler sampler(sopts, [&clock] { return clock += 1.0; },
                               &series);
  std::atomic<uint64_t> counter{7};
  sampler.AddProbe("c", [&counter] {
    return static_cast<double>(counter.load());
  });
  sampler.Start();
  sampler.Start();  // Idempotent.
  sampler.AddProbe("late", [] { return 0.0; });  // Ignored after Start.
  sampler.SampleNow();
  sampler.Stop();
  sampler.Stop();  // Idempotent.
  EXPECT_GE(sampler.samples_taken(), 3u);  // Start + SampleNow + Stop.
  auto columns = series.columns();
  ASSERT_EQ(columns.size(), 1u);
  EXPECT_EQ(columns[0], "c");
  auto samples = series.Samples();
  ASSERT_GE(samples.size(), 3u);
  for (size_t i = 1; i < samples.size(); ++i) {
    EXPECT_GT(samples[i].t_ms, samples[i - 1].t_ms);  // Monotone clock.
  }
  for (const auto& s : samples) {
    ASSERT_EQ(s.values.size(), 1u);
    EXPECT_DOUBLE_EQ(s.values[0], 7.0);
  }
}

TEST(TimelineTest, ProcSelfStatsReadsOnLinux) {
  obs::ProcSelfStats stats;
  bool ok = obs::ReadProcSelfStats(&stats);
#ifdef __linux__
  ASSERT_TRUE(ok);
  EXPECT_GT(stats.rss_bytes, 0.0);
  EXPECT_GE(stats.cpu_user_ms + stats.cpu_sys_ms, 0.0);
#else
  EXPECT_FALSE(ok);
#endif
}

// ------------------------------------------------------------- metrics

TEST(MetricsTest, CounterAndGaugeBasics) {
  obs::Counter c;
  c.Inc();
  c.Inc(41);
  EXPECT_EQ(c.value(), 42u);
  obs::Gauge g;
  g.Set(2.5);
  EXPECT_DOUBLE_EQ(g.value(), 2.5);
}

TEST(MetricsTest, HistogramBucketPlacement) {
  obs::Histogram h({1.0, 10.0, 100.0});
  h.Observe(0.5);    // <= 1
  h.Observe(1.0);    // <= 1 (bounds are inclusive upper)
  h.Observe(5.0);    // <= 10
  h.Observe(100.0);  // <= 100
  h.Observe(1e9);    // +inf tail
  EXPECT_EQ(h.num_buckets(), 4u);
  EXPECT_EQ(h.bucket_count(0), 2u);
  EXPECT_EQ(h.bucket_count(1), 1u);
  EXPECT_EQ(h.bucket_count(2), 1u);
  EXPECT_EQ(h.bucket_count(3), 1u);
  EXPECT_EQ(h.count(), 5u);
  EXPECT_DOUBLE_EQ(h.sum(), 0.5 + 1.0 + 5.0 + 100.0 + 1e9);
}

TEST(MetricsTest, ExponentialBounds) {
  auto bounds = obs::Histogram::ExponentialBounds(1.0, 4.0, 4);
  ASSERT_EQ(bounds.size(), 4u);
  EXPECT_DOUBLE_EQ(bounds[0], 1.0);
  EXPECT_DOUBLE_EQ(bounds[1], 4.0);
  EXPECT_DOUBLE_EQ(bounds[2], 16.0);
  EXPECT_DOUBLE_EQ(bounds[3], 64.0);
}

TEST(MetricsTest, RegistryReturnsStableInstances) {
  obs::MetricsRegistry reg;
  obs::Counter* a = reg.GetCounter("x");
  obs::Counter* b = reg.GetCounter("x");
  EXPECT_EQ(a, b);
  obs::Histogram* h1 = reg.GetHistogram("h", {1.0, 2.0});
  obs::Histogram* h2 = reg.GetHistogram("h", {9.0});  // First bounds win.
  EXPECT_EQ(h1, h2);
  EXPECT_EQ(h1->bounds().size(), 2u);
}

TEST(MetricsTest, RegistryIsThreadSafe) {
  obs::MetricsRegistry reg;
  constexpr int kThreads = 8;
  constexpr int kOps = 5000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&reg] {
      // Every thread registers the same names (exercising the locked
      // path) and hammers the lock-free update path.
      obs::Counter* c = reg.GetCounter("ops");
      obs::Histogram* h =
          reg.GetHistogram("lat", obs::Histogram::ExponentialBounds(1, 2, 8));
      for (int i = 0; i < kOps; ++i) {
        c->Inc();
        h->Observe(static_cast<double>(i % 300));
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(reg.GetCounter("ops")->value(),
            static_cast<uint64_t>(kThreads) * kOps);
  obs::Histogram* h = reg.GetHistogram("lat", {});
  EXPECT_EQ(h->count(), static_cast<uint64_t>(kThreads) * kOps);
  uint64_t bucket_total = 0;
  for (size_t i = 0; i < h->num_buckets(); ++i) bucket_total += h->bucket_count(i);
  EXPECT_EQ(bucket_total, h->count());
}

TEST(MetricsTest, ScopedTimerFeedsBothSinks) {
  obs::Histogram h({1e9});
  double acc_ms = 1.0;  // Accumulates, not overwrites.
  {
    obs::ScopedTimer t(&acc_ms, &h);
  }
  EXPECT_GT(acc_ms, 1.0);
  EXPECT_EQ(h.count(), 1u);
  EXPECT_GE(h.sum(), 0.0);
}

TEST(MetricsTest, ScopedTimerStopIsIdempotent) {
  double acc_ms = 0.0;
  obs::ScopedTimer t(&acc_ms);
  t.Stop();
  double first = acc_ms;
  t.Stop();
  EXPECT_DOUBLE_EQ(acc_ms, first);  // Second Stop (and dtor) add nothing.
}

// -------------------------------------------------------------- tracer

TEST(TracerTest, SpansNestAndAggregate) {
  obs::Tracer tracer;
  {
    auto outer = tracer.StartSpan("outer");
    {
      auto inner = tracer.StartSpan("inner");
    }
    {
      auto inner = tracer.StartSpan("inner");
    }
  }
  auto spans = tracer.spans();
  ASSERT_EQ(spans.size(), 3u);
  // Inner spans close first and sit one level deep.
  EXPECT_EQ(spans[0].name, "inner");
  EXPECT_EQ(spans[0].depth, 1);
  EXPECT_EQ(spans[2].name, "outer");
  EXPECT_EQ(spans[2].depth, 0);
  auto stats = tracer.PhaseStats();
  EXPECT_EQ(stats["inner"].count, 2u);
  EXPECT_EQ(stats["outer"].count, 1u);
  EXPECT_GE(stats["outer"].max_ms, 0.0);
}

TEST(TracerTest, NullTraceSpansAreNoOps) {
  auto span = obs::StartSpan(nullptr, "whatever");  // Must not crash.
  span.End();
  obs::Tracer::Span defaulted;  // Dtor of a default span is a no-op too.
}

TEST(TracerTest, EventsCarryIterationScope) {
  obs::Tracer tracer;
  tracer.Event("before", "x", 1);
  tracer.SetIteration(3);
  tracer.Event("during", "y", 2);
  tracer.SetIteration(-1);
  auto events = tracer.events();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].iteration, -1);
  EXPECT_EQ(events[1].iteration, 3);
  EXPECT_EQ(events[1].kind, "during");
  EXPECT_EQ(events[1].value, 2u);
}

TEST(TracerTest, EventOverflowIsCountedNotSilent) {
  obs::Tracer tracer;
  const size_t total = obs::Tracer::kMaxEvents + 57;
  for (size_t i = 0; i < total; ++i) tracer.Event("e");
  EXPECT_EQ(tracer.events().size(), obs::Tracer::kMaxEvents);
  EXPECT_EQ(tracer.dropped_events(), 57u);
}

// ------------------------------------------------------------ outcomes

TEST(RunOutcomeTest, ToStringCoversEveryValue) {
  EXPECT_STREQ(RunOutcomeToString(RunOutcome::kCompleted), "completed");
  EXPECT_STREQ(RunOutcomeToString(RunOutcome::kDegraded), "degraded");
  EXPECT_STREQ(RunOutcomeToString(RunOutcome::kIterationCap), "iteration_cap");
  EXPECT_STREQ(RunOutcomeToString(RunOutcome::kTruncatedDeadline),
               "truncated_deadline");
  EXPECT_STREQ(RunOutcomeToString(RunOutcome::kTruncatedCancelled),
               "truncated_cancelled");
}

TEST(RunOutcomeTest, FromStringRoundTripsEveryValue) {
  for (RunOutcome o :
       {RunOutcome::kCompleted, RunOutcome::kDegraded, RunOutcome::kIterationCap,
        RunOutcome::kTruncatedDeadline, RunOutcome::kTruncatedCancelled}) {
    RunOutcome parsed;
    ASSERT_TRUE(RunOutcomeFromString(RunOutcomeToString(o), &parsed));
    EXPECT_EQ(parsed, o);
  }
}

TEST(RunOutcomeTest, FromStringRejectsUnknownNames) {
  RunOutcome out = RunOutcome::kDegraded;
  EXPECT_FALSE(RunOutcomeFromString("bogus", &out));
  EXPECT_EQ(out, RunOutcome::kDegraded);  // Untouched.
  EXPECT_FALSE(RunOutcomeFromString("", &out));
}

// ------------------------------------------------------------- reports

TEST(ReportTest, HeraStatsJsonGolden) {
  HeraStats s;
  s.index_size = 10;
  s.iterations = 2;
  s.merges = 3;
  std::string json = obs::HeraStatsToJson(s, "completed");
  EXPECT_NE(json.find("\"outcome\":\"completed\""), std::string::npos);
  EXPECT_NE(json.find("\"index_size\":10"), std::string::npos);
  EXPECT_NE(json.find("\"iterations\":2"), std::string::npos);
  EXPECT_NE(json.find("\"merges\":3"), std::string::npos);
  EXPECT_NE(json.find("\"join_truncated\":false"), std::string::npos);
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back(), '}');
}

TEST(ReportTest, NonFiniteStatsSerializeAsNull) {
  HeraStats s;
  s.avg_simplified_nodes = std::numeric_limits<double>::quiet_NaN();
  s.total_ms = std::numeric_limits<double>::infinity();
  std::string json = obs::HeraStatsToJson(s, "completed");
  EXPECT_NE(json.find("\"avg_simplified_nodes\":null"), std::string::npos);
  EXPECT_NE(json.find("\"total_ms\":null"), std::string::npos);
  EXPECT_EQ(json.find("nan"), std::string::npos);
  EXPECT_EQ(json.find("inf"), std::string::npos);
}

TEST(ReportTest, EmptyReportExportsValidOutput) {
  obs::RunReport r;
  EXPECT_TRUE(r.empty());
  std::string json = r.ToJson();
  EXPECT_NE(json.find("\"collected\":false"), std::string::npos);
  EXPECT_NE(json.find("\"schema_version\":1"), std::string::npos);
  EXPECT_FALSE(r.ToString().empty());
  r.ToPrometheusText();  // Must not crash on an empty report.
}

TEST(ReportTest, PrometheusTextFormat) {
  obs::RunTrace trace;
  trace.metrics().GetCounter("simjoin.candidates")->Inc(7);
  trace.metrics().GetGauge("index.size")->Set(42.0);
  obs::Histogram* h = trace.metrics().GetHistogram("lat.us", {1.0, 10.0});
  h->Observe(0.5);
  h->Observe(5.0);
  h->Observe(99.0);
  HeraStats stats;
  obs::RunReport r = obs::BuildRunReport(trace, stats, "completed");
  std::string text = r.ToPrometheusText();
  EXPECT_NE(text.find("# TYPE hera_simjoin_candidates counter"),
            std::string::npos);
  EXPECT_NE(text.find("hera_simjoin_candidates 7"), std::string::npos);
  EXPECT_NE(text.find("hera_index_size 42"), std::string::npos);
  // Buckets are cumulative and end with +Inf == _count.
  EXPECT_NE(text.find("hera_lat_us_bucket{le=\"1\"} 1"), std::string::npos);
  EXPECT_NE(text.find("hera_lat_us_bucket{le=\"10\"} 2"), std::string::npos);
  EXPECT_NE(text.find("hera_lat_us_bucket{le=\"+Inf\"} 3"), std::string::npos);
  EXPECT_NE(text.find("hera_lat_us_count 3"), std::string::npos);
}

// --------------------------------------------------- engine integration

TEST(ObsIntegrationTest, ReportDisabledByDefault) {
  Dataset ds = testing_util::MakeCustomersDataset();
  auto result = Hera(HeraOptions{}).Run(ds);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->report.empty());
}

TEST(ObsIntegrationTest, CollectReportFillsEverySection) {
  Dataset ds = testing_util::MakeCustomersDataset();
  HeraOptions opts;
  opts.collect_report = true;
  auto result = Hera(opts).Run(ds);
  ASSERT_TRUE(result.ok());
  const obs::RunReport& r = result->report;
#ifdef HERA_DISABLE_OBS
  EXPECT_TRUE(r.empty());
#else
  ASSERT_TRUE(r.collected);
  EXPECT_EQ(r.outcome, "completed");
  EXPECT_EQ(r.stats.merges, result->stats.merges);

  // Phase aggregates cover the instrumented sites.
  auto phase = [&r](const std::string& name) -> const obs::RunReport::Phase* {
    for (const auto& p : r.phases) {
      if (p.name == name) return &p;
    }
    return nullptr;
  };
  ASSERT_NE(phase("index.build"), nullptr);
  ASSERT_NE(phase("resolve"), nullptr);
  ASSERT_NE(phase("iteration"), nullptr);
  EXPECT_EQ(phase("iteration")->count, result->stats.iterations);
  EXPECT_GE(phase("resolve")->total_ms, 0.0);

  // Per-iteration rows sum back to the run totals.
  ASSERT_EQ(r.iterations.size(), result->stats.iterations);
  uint64_t merges = 0, pruned = 0, verified = 0;
  for (const auto& row : r.iterations) {
    merges += row.merges;
    pruned += row.pruned;
    verified += row.verified;
  }
  EXPECT_EQ(merges, result->stats.merges);
  EXPECT_EQ(pruned, result->stats.pruned_by_bound);
  EXPECT_EQ(verified, result->stats.candidates);

  // Metric snapshot: join counters and the index gauge.
  EXPECT_GT(r.counters.at("simjoin.emitted"), 0u);
  EXPECT_GE(r.counters.at("simjoin.candidates"),
            r.counters.at("simjoin.emitted"));
  EXPECT_DOUBLE_EQ(r.gauges.at("index.size"),
                   static_cast<double>(result->stats.index_size));

  // Verify latency histogram saw every verified candidate.
  const obs::RunReport::HistogramData* lat = nullptr;
  for (const auto& h : r.histograms) {
    if (h.name == "verify.latency_us") lat = &h;
  }
  ASSERT_NE(lat, nullptr);
  EXPECT_EQ(lat->count, result->stats.candidates);

  // The JSON export parses far enough to carry the schema version.
  std::string json = r.ToJson();
  EXPECT_NE(json.find("\"schema_version\":1"), std::string::npos);
  EXPECT_NE(json.find("\"outcome\":\"completed\""), std::string::npos);
#endif
}

TEST(ObsIntegrationTest, InstrumentedRunMatchesUninstrumented) {
  Dataset ds = testing_util::MakeCustomersDataset();
  HeraOptions plain;
  HeraOptions observed;
  observed.collect_report = true;
  auto r1 = Hera(plain).Run(ds);
  auto r2 = Hera(observed).Run(ds);
  ASSERT_TRUE(r1.ok());
  ASSERT_TRUE(r2.ok());
  EXPECT_EQ(r1->entity_of, r2->entity_of);
  EXPECT_EQ(r1->stats.merges, r2->stats.merges);
  EXPECT_EQ(r1->stats.comparisons, r2->stats.comparisons);
}

#ifndef HERA_DISABLE_OBS

TEST(ObsIntegrationTest, GovernanceEventsAppearInReport) {
  Dataset ds = testing_util::MakeCustomersDataset();
  HeraOptions opts;
  opts.collect_report = true;
  opts.guard.WithMaxCandidatesPerIteration(1);
  auto result = Hera(opts).Run(ds);
  ASSERT_TRUE(result.ok());
  ASSERT_TRUE(result->stats.deferred_candidate_groups > 0);
  bool saw_defer = false;
  for (const auto& e : result->report.events) {
    if (e.kind == "defer.candidates") {
      saw_defer = true;
      EXPECT_GT(e.value, 0u);
      EXPECT_GE(e.iteration, 1);
    }
  }
  EXPECT_TRUE(saw_defer);
}

TEST(ObsIntegrationTest, TruncationEventOnImmediateDeadline) {
  Dataset ds = testing_util::MakeCustomersDataset();
  HeraOptions opts;
  opts.collect_report = true;
  opts.guard.WithTimeoutMs(0.0);  // Expires the moment it is armed.
  auto result = Hera(opts).Run(ds);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->report.outcome, "truncated_deadline");
  bool saw_truncation = false;
  for (const auto& e : result->report.events) {
    if (e.kind == "join.truncated" || e.kind == "truncated") {
      saw_truncation = true;
      EXPECT_EQ(e.detail, "deadline");
    }
  }
  EXPECT_TRUE(saw_truncation);
}

TEST(ObsIntegrationTest, ShedEventsOnIndexCeiling) {
  Dataset ds = testing_util::MakeCustomersDataset();
  HeraOptions opts;
  opts.collect_report = true;
  opts.guard.WithMaxIndexPairs(5);
  auto result = Hera(opts).Run(ds);
  ASSERT_TRUE(result.ok());
  ASSERT_GT(result->stats.shed_index_pairs, 0u);
  EXPECT_EQ(result->report.outcome, "degraded");
  uint64_t shed_from_events = 0;
  for (const auto& e : result->report.events) {
    if (e.kind == "shed.index_pairs") shed_from_events += e.value;
  }
  EXPECT_EQ(shed_from_events, result->stats.shed_index_pairs);
}

TEST(ObsIntegrationTest, FailpointTripsBecomeEvents) {
  failpoint::DisarmAll();
  failpoint::Arm("engine.merge", Status::Internal("injected"), /*skip=*/0,
                 /*trips=*/1);
  Dataset ds = testing_util::MakeCustomersDataset();
  HeraOptions opts;
  opts.collect_report = true;
  auto result = Hera(opts).Run(ds);
  failpoint::DisarmAll();
  ASSERT_FALSE(result.ok());  // The injected failure propagates.

  // The trip itself is observable on a fresh, successful run with the
  // failpoint disarmed mid-way: verify via IncrementalHera, whose
  // report survives the failed round.
  auto inc = IncrementalHera::Create(opts, ds.schemas());
  ASSERT_TRUE(inc.ok());
  for (const Record& r : ds.records()) {
    ASSERT_TRUE((*inc)->AddRecord(r.schema_id(), r.values()).ok());
  }
  failpoint::Arm("engine.merge", Status::Internal("injected"), /*skip=*/0,
                 /*trips=*/1);
  EXPECT_FALSE((*inc)->Resolve().ok());
  failpoint::DisarmAll();
  obs::RunReport report = (*inc)->Report();
  ASSERT_TRUE(report.collected);
  EXPECT_EQ(report.counters.at("failpoint.trips"), 1u);
  bool saw_trip = false;
  for (const auto& e : report.events) {
    if (e.kind == "failpoint" && e.detail == "engine.merge") saw_trip = true;
  }
  EXPECT_TRUE(saw_trip);

  // And the retry completes, accumulating into the same trace.
  ASSERT_TRUE((*inc)->Resolve().ok());
  obs::RunReport after = (*inc)->Report();
  EXPECT_EQ(after.outcome, "completed");
  EXPECT_GT(after.counters.at("incremental.rounds"), 1u);
}

TEST(ObsIntegrationTest, IncrementalRoundsAccumulate) {
  Dataset ds = testing_util::MakeCustomersDataset();
  HeraOptions opts;
  opts.collect_report = true;
  auto inc = IncrementalHera::Create(opts, ds.schemas());
  ASSERT_TRUE(inc.ok());
  size_t half = ds.records().size() / 2;
  for (size_t i = 0; i < ds.records().size(); ++i) {
    const Record& r = ds.records()[i];
    ASSERT_TRUE((*inc)->AddRecord(r.schema_id(), r.values()).ok());
    if (i + 1 == half) ASSERT_TRUE((*inc)->Resolve().ok());
  }
  ASSERT_TRUE((*inc)->Resolve().ok());
  obs::RunReport report = (*inc)->Report();
  ASSERT_TRUE(report.collected);
  EXPECT_EQ(report.counters.at("incremental.rounds"), 2u);
  EXPECT_EQ(report.counters.at("incremental.records"), ds.records().size());
  bool saw_round_event = false;
  for (const auto& e : report.events) {
    if (e.kind == "incremental.round") saw_round_event = true;
  }
  EXPECT_TRUE(saw_round_event);
}

// ------------------------------------------- Prometheus labeled series

TEST(ReportTest, PrometheusPhaseSeriesAreLabeledAndEscaped) {
  obs::RunReport r;
  r.collected = true;
  r.phases.push_back({"index.build", 2, 12.5, 8.0});
  r.phases.push_back({"odd\"name\\with\nstuff", 1, 1.0, 1.0});
  std::string text = r.ToPrometheusText();
  EXPECT_NE(text.find("# TYPE hera_phase_ms_total counter"),
            std::string::npos);
  EXPECT_NE(text.find("hera_phase_ms_total{phase=\"index.build\"} 12.5"),
            std::string::npos);
  EXPECT_NE(text.find("hera_phase_runs_total{phase=\"index.build\"} 2"),
            std::string::npos);
  // Backslash, quote, and newline are escaped inside the label value.
  EXPECT_NE(
      text.find(
          "hera_phase_ms_total{phase=\"odd\\\"name\\\\with\\nstuff\"} 1"),
      std::string::npos);
  // No line of the exposition text contains a raw (unescaped) newline
  // inside a label: every line must be "name{...} value" or a comment.
  size_t start = 0;
  while (start < text.size()) {
    size_t end = text.find('\n', start);
    std::string line = text.substr(start, end - start);
    EXPECT_TRUE(line.empty() || line[0] == '#' ||
                line.find(' ') != std::string::npos)
        << "torn line: " << line;
    start = end == std::string::npos ? text.size() : end + 1;
  }
}

// ------------------------------------------------------- timeline CSV

TEST(ReportTest, TimelineCsvGolden) {
  obs::RunReport r;
  r.collected = true;
  r.timeline.interval_ms = 50.0;
  r.timeline.columns = {"merges", "index_size"};
  obs::TimelineSample s1;
  s1.t_ms = 1.5;
  s1.rss_bytes = 4096;
  s1.cpu_user_ms = 2;
  s1.cpu_sys_ms = 1;
  s1.values = {0, 10};
  obs::TimelineSample s2 = s1;
  s2.t_ms = 51.5;
  s2.values = {3, 12};
  r.timeline.samples = {s1, s2};
  EXPECT_EQ(r.TimelineCsv(),
            "t_ms,rss_bytes,cpu_user_ms,cpu_sys_ms,merges,index_size\n"
            "1.5,4096,2,1,0,10\n"
            "51.5,4096,2,1,3,12\n");
  // Header-only when the sampler was off.
  obs::RunReport empty;
  EXPECT_EQ(empty.TimelineCsv(), "t_ms,rss_bytes,cpu_user_ms,cpu_sys_ms\n");
}

// -------------------------------------------------- timeline sampling

TEST(ObsIntegrationTest, TimelineSamplerFillsReportTimeline) {
  Dataset ds = testing_util::MakeCustomersDataset();
  HeraOptions opts;
  opts.timeline_interval_ms = 1;  // Implies report collection.
  auto result = Hera(opts).Run(ds);
  ASSERT_TRUE(result.ok());
  const obs::RunReport& r = result->report;
  ASSERT_TRUE(r.collected);
  EXPECT_DOUBLE_EQ(r.timeline.interval_ms, 1.0);
  ASSERT_GE(r.timeline.samples.size(), 2u);  // Start + Stop edges.
  // Columns include the quality-curve probes.
  auto has_column = [&r](const char* name) {
    for (const auto& c : r.timeline.columns) {
      if (c == name) return true;
    }
    return false;
  };
  ASSERT_TRUE(has_column("merges"));
  ASSERT_TRUE(has_column("verified_groups"));
  ASSERT_TRUE(has_column("pairs_emitted"));
  ASSERT_TRUE(has_column("index_size"));
  size_t merges_col = 0;
  while (r.timeline.columns[merges_col] != "merges") ++merges_col;
  double prev_t = -1.0, prev_merges = -1.0;
  for (const obs::TimelineSample& s : r.timeline.samples) {
    EXPECT_GE(s.t_ms, prev_t);  // Monotone sample clock.
    prev_t = s.t_ms;
    ASSERT_EQ(s.values.size(), r.timeline.columns.size());
    EXPECT_GE(s.values[merges_col], prev_merges);  // Cumulative curve.
    prev_merges = s.values[merges_col];
  }
  // The final edge sample sees every merge of the run.
  EXPECT_DOUBLE_EQ(r.timeline.samples.back().values[merges_col],
                   static_cast<double>(result->stats.merges));
  // Quality-over-time: per-iteration rows carry the stitched clock.
  double prev_row_t = 0.0;
  for (const auto& row : r.iterations) {
    EXPECT_GE(row.t_ms, prev_row_t);
    prev_row_t = row.t_ms;
  }
#ifdef __linux__
  EXPECT_GT(r.timeline.samples.back().rss_bytes, 0.0);
#endif
}

TEST(ObsIntegrationTest, SamplerOnOrOffProducesIdenticalResults) {
  Dataset ds = testing_util::MakeCustomersDataset();
  HeraOptions plain;
  HeraOptions sampled;
  sampled.collect_report = true;
  sampled.timeline_interval_ms = 1;
  auto r1 = Hera(plain).Run(ds);
  auto r2 = Hera(sampled).Run(ds);
  ASSERT_TRUE(r1.ok());
  ASSERT_TRUE(r2.ok());
  EXPECT_EQ(r1->entity_of, r2->entity_of);
  EXPECT_EQ(r1->stats.merge_sequence, r2->stats.merge_sequence);
}

TEST(ObsIntegrationTest, TimelineRingOverflowIsReported) {
  Dataset ds = testing_util::MakeCustomersDataset();
  HeraOptions opts;
  opts.timeline_interval_ms = 1;
  opts.timeline_capacity = 2;  // Force the ring to wrap.
  auto result = Hera(opts).Run(ds);
  ASSERT_TRUE(result.ok());
  const obs::RunReport& r = result->report;
  ASSERT_LE(r.timeline.samples.size(), 2u);  // Ring capacity holds.
  ASSERT_GE(r.timeline.samples.size(), 1u);
  // Overflow keeps the newest samples: the retained tail is the final
  // edge sample, which sees every merge of the run.
  size_t merges_col = 0;
  while (r.timeline.columns[merges_col] != "merges") ++merges_col;
  EXPECT_DOUBLE_EQ(r.timeline.samples.back().values[merges_col],
                   static_cast<double>(result->stats.merges));
}

// ------------------------------------------------------- Chrome trace

TEST(ChromeTraceTest, ExportRoundTripsThroughRepoParser) {
  Dataset ds = testing_util::MakeCustomersDataset();
  HeraOptions opts;
  opts.collect_report = true;
  opts.timeline_interval_ms = 1;
  auto result = Hera(opts).Run(ds);
  ASSERT_TRUE(result.ok());
  std::string trace_json = obs::ExportChromeTrace(result->report);
  auto doc = obs::ParseJson(trace_json);
  ASSERT_TRUE(doc.ok()) << doc.status().ToString();
  const obs::JsonValue* events = doc->Find("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_TRUE(events->is_array());
  ASSERT_GT(events->items.size(), 0u);

  bool saw_phase_span = false, saw_counter = false, saw_thread_name = false;
  for (const obs::JsonValue& e : events->items) {
    ASSERT_TRUE(e.is_object());
    const obs::JsonValue* ph = e.Find("ph");
    ASSERT_NE(ph, nullptr);
    ASSERT_TRUE(ph->is_string());
    ASSERT_NE(e.Find("pid"), nullptr);
    ASSERT_TRUE(e.Find("pid")->is_number());
    ASSERT_NE(e.Find("tid"), nullptr);
    ASSERT_TRUE(e.Find("tid")->is_number());
    if (ph->string_value != "M") {
      // Every non-metadata event sits on the timeline.
      ASSERT_NE(e.Find("ts"), nullptr);
      ASSERT_TRUE(e.Find("ts")->is_number());
      EXPECT_GE(e.Find("ts")->number_value, 0.0);
    }
    if (ph->string_value == "X") {
      ASSERT_NE(e.Find("dur"), nullptr);
      EXPECT_GE(e.Find("dur")->number_value, 0.0);
      if (e.Find("name")->string_value == "resolve") saw_phase_span = true;
      // Iteration spans carry the pass's counter deltas as args.
      if (e.Find("name")->string_value == "iteration") {
        EXPECT_NE(e.FindPath("args.merges"), nullptr);
        EXPECT_NE(e.FindPath("args.verified"), nullptr);
      }
    }
    if (ph->string_value == "C" &&
        e.Find("name")->string_value == "merges") {
      saw_counter = true;
      EXPECT_NE(e.FindPath("args.value"), nullptr);
    }
    if (ph->string_value == "M" &&
        e.Find("name")->string_value == "thread_name") {
      saw_thread_name = true;
    }
  }
  EXPECT_TRUE(saw_phase_span);
  EXPECT_TRUE(saw_counter);
  EXPECT_TRUE(saw_thread_name);
}

TEST(ChromeTraceTest, GovernanceEventsBecomeInstants) {
  Dataset ds = testing_util::MakeCustomersDataset();
  HeraOptions opts;
  opts.collect_report = true;
  opts.guard.WithMaxIndexPairs(5);  // Forces shed.index_pairs events.
  auto result = Hera(opts).Run(ds);
  ASSERT_TRUE(result.ok());
  ASSERT_GT(result->stats.shed_index_pairs, 0u);
  auto doc = obs::ParseJson(obs::ExportChromeTrace(result->report));
  ASSERT_TRUE(doc.ok());
  bool saw_instant = false;
  for (const obs::JsonValue& e : doc->Find("traceEvents")->items) {
    const obs::JsonValue* ph = e.Find("ph");
    if (ph->string_value == "i" &&
        e.Find("name")->string_value == "shed.index_pairs") {
      saw_instant = true;
      EXPECT_EQ(e.Find("s")->string_value, "p");  // Process-scoped.
      EXPECT_GT(e.FindPath("args.value")->number_value, 0.0);
    }
  }
  EXPECT_TRUE(saw_instant);
}

TEST(ChromeTraceTest, EmptyReportExportsValidTrace) {
  obs::RunReport empty;
  auto doc = obs::ParseJson(obs::ExportChromeTrace(empty));
  ASSERT_TRUE(doc.ok()) << doc.status().ToString();
  const obs::JsonValue* events = doc->Find("traceEvents");
  ASSERT_NE(events, nullptr);
  // Metadata-only (process/controller names), but schema-valid.
  EXPECT_GE(events->items.size(), 2u);
}

#endif  // HERA_DISABLE_OBS

}  // namespace
}  // namespace hera
