// Paper conformance: every number the paper computes in its worked
// examples, reproduced end-to-end from the actual Fig 1 records
// through the production pipeline (join -> index -> bounds ->
// verification -> merge). Scattered unit tests cover these pieces in
// isolation; this suite pins the arithmetic to the paper's text.

#include <gtest/gtest.h>

#include <cmath>

#include "core/hera.h"
#include "index/bounds.h"
#include "index/value_pair_index.h"
#include "schema/majority_vote.h"
#include "sim/metrics.h"
#include "simjoin/similarity_join.h"
#include "testing_util.h"

namespace hera {
namespace {

class PaperConformanceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ds_ = testing_util::MakeCustomersDataset();
    metric_ = MakeSimilarity("jaccard_q2");
  }

  /// Index over the base records at threshold xi.
  ValuePairIndex BuildIndex(double xi) {
    std::vector<LabeledValue> values;
    for (const Record& r : ds_.records()) {
      SuperRecord sr = SuperRecord::FromRecord(r);
      for (uint32_t f = 0; f < sr.num_fields(); ++f) {
        for (uint32_t v = 0; v < sr.field(f).size(); ++v) {
          values.push_back(
              {ValueLabel{sr.rid(), f, v}, sr.field(f).value(v).value});
        }
      }
    }
    ValuePairIndex index;
    index.Build(NestedLoopJoin().Join(values, *metric_, xi));
    return index;
  }

  Dataset ds_;
  ValueSimilarityPtr metric_;
};

TEST_F(PaperConformanceTest, Section2Example3ValueSimilarity) {
  // "simv({Electronic},{electronics}) ... we set 2 q-grams" — the max
  // field-similarity value pair between the Con.Type fields is the
  // exact Electronic/Electronic pair (1.0); the cross pair is 0.9.
  EXPECT_DOUBLE_EQ(
      metric_->Compute(Value("Electronic"), Value("electronics")), 0.9);
  EXPECT_DOUBLE_EQ(
      metric_->Compute(Value("Electronic"), Value("Electronic")), 1.0);
}

TEST_F(PaperConformanceTest, Section3Example4BoundsOfR4R6) {
  // Example 4: Up(r4, r6) = Low(r4, r6) = (1 + 1 + 0.9) / min(5,5)
  // = 0.58 — no multiple field, so the pair is resolved directly.
  ValuePairIndex index = BuildIndex(0.5);
  auto pairs = index.PairsFor(3, 5);
  // Example 4 finds exactly three similar value pairs for (r4, r6):
  // mailbox, Tel, Con.Type.
  ASSERT_EQ(pairs.size(), 3u);
  BoundResult bounds = ComputeBounds(pairs, 5, 5);
  EXPECT_TRUE(bounds.exact);
  EXPECT_NEAR(bounds.upper, 0.58, 1e-9);
  EXPECT_NEAR(bounds.lower, 0.58, 1e-9);
}

TEST_F(PaperConformanceTest, Section3IndexHoldsR1R6Pairs) {
  // Fig 4 / Example 5: (r1, r6) share four similar value pairs (name,
  // address, e-mail, Con.Type) at xi = 0.5.
  ValuePairIndex index = BuildIndex(0.5);
  EXPECT_EQ(index.PairsFor(0, 5).size(), 4u);
  // And they are removed by the merge's delete step (Example 5).
}

TEST_F(PaperConformanceTest, Section2DescriptionDifferencePairHasNoPairs) {
  // r1 and r2 share no similar value at xi = 0.5 — the description
  // difference pair is invisible to any direct comparison.
  ValuePairIndex index = BuildIndex(0.5);
  EXPECT_TRUE(index.PairsFor(0, 1).empty());
}

TEST_F(PaperConformanceTest, Section5OverallSolutionFig8) {
  // Fig 8: at xi = delta = 0.5, HERA resolves {r1, r2, r4, r6} and
  // {r3, r5}; the merge of (R1, R2) happens through super records.
  HeraOptions opts;
  opts.xi = 0.5;
  opts.delta = 0.5;
  auto result = Hera(opts).Run(ds_);
  ASSERT_TRUE(result.ok());
  const auto& labels = result->entity_of;
  EXPECT_EQ(labels[0], labels[1]);
  EXPECT_EQ(labels[0], labels[3]);
  EXPECT_EQ(labels[0], labels[5]);
  EXPECT_EQ(labels[2], labels[4]);
  EXPECT_NE(labels[0], labels[2]);
  // Iteration structure: merging requires at least two passes (the
  // (R1, R2) merge only becomes possible after the first-round merges).
  EXPECT_GE(result->stats.iterations, 2u);
}

TEST_F(PaperConformanceTest, Section4Theorem2WorkedExample) {
  // "suppose p = 0.8, n = 10, rho = 0.6. We have UP_error = 0.57 and
  // we decide x_hat as the true matching with the probability 0.43."
  double up = SchemaMatchingPredictor::ErrorUpperBound(10, 0.8);
  EXPECT_NEAR(up, 0.57, 0.005);
  EXPECT_LT(up, 0.6);  // Decided at rho = 0.6.
  EXPECT_NEAR(1.0 - up, 0.43, 0.005);
}

TEST_F(PaperConformanceTest, Section2Example3RecordSimilarityShape) {
  // Example 3 computes Sim(R1, R2) = (0.37 + 1 + 1 + 1)/6 = 0.56 at
  // xi = 0.35 (their address-pair similarity 0.37 differs slightly
  // under our normalization — we assert the structure: four matched
  // fields over six, three of them exact).
  HeraOptions opts;
  opts.xi = 0.5;
  opts.delta = 0.5;
  auto result = Hera(opts).Run(ds_);
  ASSERT_TRUE(result.ok());
  // After resolution, the super record of entity {r1,r2,r4,r6} holds
  // 9 fields: 6 from R1 = r1 ⊕ r6 plus r2/r4's unmatched name(Bush),
  // job, and address variant.
  const SuperRecord& sr = result->super_records.begin()->second;
  EXPECT_EQ(sr.members().size(), 4u);
  EXPECT_EQ(sr.num_fields(), 9u);
}

}  // namespace
}  // namespace hera
