// Golden determinism tests for the parallel execution subsystem
// (src/parallel/) and the TokenCache: serial and multi-threaded runs
// must produce byte-identical pair lists, merge sequences, and final
// clusters — including under an active failpoint. Plus unit tests for
// ThreadPool / ParallelChunks themselves. See docs/performance.md for
// the guarantee being pinned down here.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <numeric>
#include <set>
#include <tuple>
#include <vector>

#include "common/failpoint.h"
#include "core/hera.h"
#include "core/incremental.h"
#include "data/movie_generator.h"
#include "data/publication_generator.h"
#include "parallel/parallel_for.h"
#include "parallel/thread_pool.h"
#include "sim/metrics.h"
#include "text/qgram.h"
#include "text/token_cache.h"

namespace hera {
namespace {

// ---------------------------------------------------------- ThreadPool

TEST(ThreadPoolTest, RunsJobOncePerWorker) {
  ThreadPool pool(4);
  ASSERT_EQ(pool.size(), 4u);
  std::vector<std::atomic<int>> hits(4);
  pool.Run([&](size_t worker) { hits[worker].fetch_add(1); });
  for (size_t w = 0; w < 4; ++w) EXPECT_EQ(hits[w].load(), 1) << w;
}

TEST(ThreadPoolTest, ReusableAcrossManyRuns) {
  ThreadPool pool(3);
  std::atomic<int> total{0};
  for (int round = 0; round < 50; ++round) {
    pool.Run([&](size_t) { total.fetch_add(1); });
  }
  EXPECT_EQ(total.load(), 150);
}

TEST(ThreadPoolTest, SingleWorkerPool) {
  ThreadPool pool(1);
  std::atomic<int> total{0};
  pool.Run([&](size_t worker) {
    EXPECT_EQ(worker, 0u);
    total.fetch_add(1);
  });
  EXPECT_EQ(total.load(), 1);
}

// ------------------------------------------------------ ParallelChunks

TEST(ParallelChunksTest, CoversRangeExactlyOnceSerial) {
  std::vector<int> touched(100, 0);
  std::vector<size_t> chunk_order;
  ParallelRunStats stats =
      ParallelChunks(nullptr, 100, 7,
                     [&](size_t chunk, size_t begin, size_t end, size_t worker) {
                       EXPECT_EQ(worker, 0u);
                       chunk_order.push_back(chunk);
                       for (size_t i = begin; i < end; ++i) ++touched[i];
                     });
  for (int t : touched) EXPECT_EQ(t, 1);
  EXPECT_EQ(stats.workers, 1u);
  EXPECT_EQ(stats.chunks, 15u);  // ceil(100 / 7)
  // Serial fallback runs chunks inline in ascending order.
  for (size_t c = 0; c < chunk_order.size(); ++c) EXPECT_EQ(chunk_order[c], c);
}

TEST(ParallelChunksTest, CoversRangeExactlyOnceParallel) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> touched(1000);
  ParallelRunStats stats = ParallelChunks(
      &pool, 1000, 13, [&](size_t, size_t begin, size_t end, size_t) {
        for (size_t i = begin; i < end; ++i) touched[i].fetch_add(1);
      });
  for (auto& t : touched) EXPECT_EQ(t.load(), 1);
  EXPECT_EQ(stats.workers, 4u);
  EXPECT_EQ(stats.busy_us.size(), 4u);
}

TEST(ParallelChunksTest, ChunkBoundsAreAFunctionOfNAndGrain) {
  // The determinism guarantee rests on this: chunk c covers
  // [c*grain, min(n, (c+1)*grain)) regardless of worker count.
  ThreadPool pool(3);
  std::vector<std::pair<size_t, size_t>> bounds(8);
  ParallelChunks(&pool, 50, 7, [&](size_t chunk, size_t begin, size_t end,
                                   size_t) { bounds[chunk] = {begin, end}; });
  for (size_t c = 0; c < 8; ++c) {
    EXPECT_EQ(bounds[c].first, c * 7);
    EXPECT_EQ(bounds[c].second, std::min<size_t>(50, (c + 1) * 7));
  }
}

TEST(ParallelChunksTest, EmptyRangeAndDefaultGrain) {
  ParallelRunStats stats =
      ParallelChunks(nullptr, 0, 4, [&](size_t, size_t, size_t, size_t) {
        FAIL() << "no chunks expected for n=0";
      });
  EXPECT_EQ(stats.chunks, 0u);
  EXPECT_GE(DefaultGrain(0, 1), 1u);
  EXPECT_GE(DefaultGrain(100, 4), 1u);
  EXPECT_EQ(DefaultGrain(100, 1), 100u);  // Serial: one chunk.
}

// ---------------------------------------------------------- TokenCache

TEST(TokenCacheTest, HitsAndMissesAreCounted) {
  TokenCache cache(2);
  EXPECT_EQ(cache.q(), 2);
  auto a1 = cache.Grams("norman");
  auto a2 = cache.Grams("norman");
  auto b = cache.Grams("street");
  TokenCache::Stats s = cache.stats();
  EXPECT_EQ(s.misses, 2u);
  EXPECT_EQ(s.hits, 1u);
  EXPECT_EQ(s.entries, 2u);
  // Hits return the published vector, not a copy.
  EXPECT_EQ(a1.get(), a2.get());
  EXPECT_NE(a1.get(), b.get());
  // Content matches direct extraction.
  EXPECT_EQ(*a1, QgramSet("norman", 2));
}

TEST(TokenCacheTest, CapacityCeilingSkipsInsertsButStillServes) {
  TokenCache cache(2, /*max_entries=*/1);
  auto a = cache.Grams("alpha");
  auto b = cache.Grams("beta");  // Over capacity: computed, not stored.
  EXPECT_EQ(*b, QgramSet("beta", 2));
  TokenCache::Stats s = cache.stats();
  EXPECT_EQ(s.entries, 1u);
  EXPECT_EQ(s.skipped_inserts, 1u);
  // The stored entry still hits.
  cache.Grams("alpha");
  EXPECT_EQ(cache.stats().hits, 1u);
}

TEST(TokenCacheTest, InvalidateAndClear) {
  TokenCache cache(2);
  cache.Grams("alpha");
  cache.Grams("beta");
  cache.Invalidate("alpha");
  EXPECT_EQ(cache.stats().entries, 1u);
  cache.Clear();
  EXPECT_EQ(cache.stats().entries, 0u);
}

TEST(TokenCacheTest, ConcurrentAccessConverges) {
  TokenCache cache(2);
  ThreadPool pool(4);
  std::vector<TokenCache::GramsPtr> got(4);
  pool.Run([&](size_t w) { got[w] = cache.Grams("concurrent"); });
  for (size_t w = 1; w < 4; ++w) EXPECT_EQ(*got[0], *got[w]);
  EXPECT_EQ(cache.stats().entries, 1u);
}

// ------------------------------------------------- Join determinism

using PairTuple = std::tuple<uint32_t, uint32_t, uint32_t, uint32_t, uint32_t,
                             uint32_t, double>;

std::vector<PairTuple> AsTuples(const std::vector<ValuePair>& pairs) {
  std::vector<PairTuple> out;
  out.reserve(pairs.size());
  for (const ValuePair& p : pairs) {
    out.push_back({p.a.rid, p.a.fid, p.a.vid, p.b.rid, p.b.fid, p.b.vid, p.sim});
  }
  return out;
}

Dataset MovieData(size_t records = 220, uint64_t seed = 7) {
  MovieGeneratorConfig config;
  config.num_records = records;
  config.num_entities = records / 5;
  config.seed = seed;
  return GenerateMovieDataset(config);
}

Dataset PublicationData(size_t records = 180, uint64_t seed = 11) {
  PublicationGeneratorConfig config;
  config.num_records = records;
  config.num_entities = records / 4;
  config.seed = seed;
  return GeneratePublicationDataset(config);
}

TEST(ParallelJoinTest, PairListIsByteIdenticalAcrossThreadCounts) {
  for (bool prefix_filter : {true, false}) {
    // The nested-loop oracle is O(n^2); keep its dataset small.
    Dataset ds = prefix_filter ? MovieData() : MovieData(70, 7);
    HeraOptions serial_opts;
    serial_opts.use_prefix_filter_join = prefix_filter;
    serial_opts.num_threads = 0;
    auto serial = ComputeSimilarValuePairs(ds, serial_opts);
    ASSERT_TRUE(serial.ok());
    for (size_t threads : {2u, 4u, 8u}) {
      HeraOptions opts = serial_opts;
      opts.num_threads = threads;
      auto parallel = ComputeSimilarValuePairs(ds, opts);
      ASSERT_TRUE(parallel.ok());
      // Identical content AND identical order.
      EXPECT_EQ(AsTuples(*serial), AsTuples(*parallel))
          << "prefix_filter=" << prefix_filter << " threads=" << threads;
    }
  }
}

TEST(ParallelJoinTest, JoinABIsByteIdenticalAcrossThreadCounts) {
  Dataset ds = MovieData(160, 3);
  std::vector<LabeledValue> base, probe;
  for (const Record& r : ds.records()) {
    SuperRecord sr = SuperRecord::FromRecord(r);
    for (uint32_t f = 0; f < sr.num_fields(); ++f) {
      for (uint32_t v = 0; v < sr.field(f).size(); ++v) {
        LabeledValue lv{ValueLabel{sr.rid(), f, v}, sr.field(f).value(v).value};
        (r.id() % 2 == 0 ? base : probe).push_back(lv);
      }
    }
  }
  auto metric = MakeSimilarity("hybrid(jaccard_q2)");
  ASSERT_NE(metric, nullptr);
  PrefixFilterJoin serial_join;
  std::vector<ValuePair> serial_out;
  ASSERT_TRUE(
      serial_join.JoinAB(probe, base, *metric, 0.5, RunGuard(), &serial_out).ok());
  for (size_t threads : {2u, 4u, 8u}) {
    ThreadPool pool(threads);
    PrefixFilterJoin join;
    join.SetExecutor(&pool);
    std::vector<ValuePair> out;
    JoinReport report;
    ASSERT_TRUE(join.JoinAB(probe, base, *metric, 0.5, RunGuard(), &out, &report).ok());
    EXPECT_EQ(AsTuples(serial_out), AsTuples(out)) << "threads=" << threads;
    EXPECT_EQ(report.threads_used, threads);
  }
}

TEST(ParallelJoinTest, TokenCacheDoesNotChangeJoinOutput) {
  Dataset ds = MovieData(120, 5);
  HeraOptions opts;
  auto no_cache = ComputeSimilarValuePairs(ds, opts);  // Plain join.
  ASSERT_TRUE(no_cache.ok());
  std::vector<LabeledValue> values;
  for (const Record& r : ds.records()) {
    SuperRecord sr = SuperRecord::FromRecord(r);
    for (uint32_t f = 0; f < sr.num_fields(); ++f) {
      for (uint32_t v = 0; v < sr.field(f).size(); ++v) {
        values.push_back(
            {ValueLabel{sr.rid(), f, v}, sr.field(f).value(v).value});
      }
    }
  }
  auto metric = MakeSimilarity(opts.metric);
  PrefixFilterJoin join;
  auto cache = std::make_shared<TokenCache>(join.q());
  join.SetTokenCache(cache);
  // Two runs: the second is served from the cache and must not differ.
  std::vector<ValuePair> first, second;
  ASSERT_TRUE(join.Join(values, *metric, opts.xi, RunGuard(), &first).ok());
  ASSERT_TRUE(join.Join(values, *metric, opts.xi, RunGuard(), &second).ok());
  EXPECT_EQ(AsTuples(*no_cache), AsTuples(first));
  EXPECT_EQ(AsTuples(first), AsTuples(second));
  EXPECT_GT(cache->stats().hits, 0u);
}

// ------------------------------------------------ Engine determinism

struct RunSignature {
  std::vector<uint32_t> labels;
  std::vector<std::pair<uint32_t, uint32_t>> merge_sequence;
  size_t merges, comparisons, candidates, direct_merges, pruned, iterations;
  size_t decided;
};

RunSignature SignatureOf(const HeraResult& result) {
  RunSignature s;
  s.labels = result.entity_of;
  s.merge_sequence = result.stats.merge_sequence;
  s.merges = result.stats.merges;
  s.comparisons = result.stats.comparisons;
  s.candidates = result.stats.candidates;
  s.direct_merges = result.stats.direct_merges;
  s.pruned = result.stats.pruned_by_bound;
  s.iterations = result.stats.iterations;
  s.decided = result.stats.decided_schema_matchings;
  return s;
}

void ExpectSameSignature(const RunSignature& a, const RunSignature& b,
                         const char* what) {
  EXPECT_EQ(a.labels, b.labels) << what;
  EXPECT_EQ(a.merge_sequence, b.merge_sequence) << what;
  EXPECT_EQ(a.merges, b.merges) << what;
  EXPECT_EQ(a.comparisons, b.comparisons) << what;
  EXPECT_EQ(a.candidates, b.candidates) << what;
  EXPECT_EQ(a.direct_merges, b.direct_merges) << what;
  EXPECT_EQ(a.pruned, b.pruned) << what;
  EXPECT_EQ(a.iterations, b.iterations) << what;
  EXPECT_EQ(a.decided, b.decided) << what;
}

TEST(ParallelEngineTest, MovieRunIsDeterministicAcrossThreadCounts) {
  Dataset ds = MovieData();
  HeraOptions opts;
  auto serial = Hera(opts).Run(ds);
  ASSERT_TRUE(serial.ok());
  ASSERT_GT(serial->stats.merges, 0u);
  RunSignature want = SignatureOf(*serial);
  for (size_t threads : {2u, 4u, 8u}) {
    HeraOptions popts;
    popts.num_threads = threads;
    auto parallel = Hera(popts).Run(ds);
    ASSERT_TRUE(parallel.ok());
    ExpectSameSignature(want, SignatureOf(*parallel),
                        threads == 2 ? "movies t=2"
                                     : (threads == 4 ? "movies t=4" : "movies t=8"));
  }
}

TEST(ParallelEngineTest, PublicationRunIsDeterministicAcrossThreadCounts) {
  Dataset ds = PublicationData();
  for (bool tight : {false, true}) {
    HeraOptions opts;
    opts.tight_bounds = tight;
    auto serial = Hera(opts).Run(ds);
    ASSERT_TRUE(serial.ok());
    RunSignature want = SignatureOf(*serial);
    for (size_t threads : {2u, 4u}) {
      HeraOptions popts = opts;
      popts.num_threads = threads;
      auto parallel = Hera(popts).Run(ds);
      ASSERT_TRUE(parallel.ok());
      ExpectSameSignature(want, SignatureOf(*parallel), "publications");
    }
  }
}

TEST(ParallelEngineTest, IncrementalRoundsAreDeterministic) {
  Dataset ds = MovieData(150, 9);
  auto run_incremental = [&](size_t threads) {
    HeraOptions opts;
    opts.num_threads = threads;
    auto inc = IncrementalHera::Create(opts, ds.schemas());
    EXPECT_TRUE(inc.ok());
    // Three rounds of arrivals.
    size_t n = ds.size();
    std::vector<size_t> cuts = {n / 3, 2 * n / 3, n};
    size_t next = 0;
    for (size_t cut : cuts) {
      for (; next < cut; ++next) {
        const Record& r = ds.record(static_cast<uint32_t>(next));
        EXPECT_TRUE((*inc)->AddRecord(r.schema_id(), r.values()).ok());
      }
      EXPECT_TRUE((*inc)->Resolve().ok());
    }
    return std::make_pair((*inc)->Labels(), (*inc)->stats().merge_sequence);
  };
  auto serial = run_incremental(0);
  for (size_t threads : {2u, 4u, 8u}) {
    auto parallel = run_incremental(threads);
    EXPECT_EQ(serial.first, parallel.first) << "threads=" << threads;
    EXPECT_EQ(serial.second, parallel.second) << "threads=" << threads;
  }
}

TEST(ParallelEngineTest, FailpointFiresIdenticallyUnderParallelRun) {
  Dataset ds = MovieData(120, 21);
  // Serial reference: fail on the 3rd KM verification.
  auto run_with_failpoint = [&](size_t threads) {
    failpoint::Arm("verify.km", Status::Internal("injected"), /*skip=*/2,
                   /*trips=*/1);
    HeraOptions opts;
    opts.num_threads = threads;
    auto result = Hera(opts).Run(ds);
    size_t hits = failpoint::HitCount("verify.km");
    failpoint::DisarmAll();
    return std::make_pair(result.ok() ? Status::OK() : result.status(), hits);
  };
  auto [serial_status, serial_hits] = run_with_failpoint(0);
  ASSERT_FALSE(serial_status.ok());
  for (size_t threads : {2u, 4u}) {
    auto [status, hits] = run_with_failpoint(threads);
    // Speculative KM runs in workers never touch the failpoint: the
    // injected error fires at the same serial consumption point, after
    // the same number of passing hits.
    EXPECT_EQ(status.ToString(), serial_status.ToString())
        << "threads=" << threads;
    EXPECT_EQ(hits, serial_hits) << "threads=" << threads;
  }
}

TEST(ParallelEngineTest, RecoversAndConvergesAfterInjectedFailure) {
  // After an injected mid-run failure, a re-Resolve must converge to
  // the same fixpoint as an uninterrupted serial run — at any thread
  // count.
  Dataset ds = MovieData(100, 13);
  HeraOptions serial_opts;
  auto want = Hera(serial_opts).Run(ds);
  ASSERT_TRUE(want.ok());

  for (size_t threads : {0u, 4u}) {
    HeraOptions opts;
    opts.num_threads = threads;
    auto inc = IncrementalHera::Create(opts, ds.schemas());
    ASSERT_TRUE(inc.ok());
    for (const Record& r : ds.records()) {
      ASSERT_TRUE((*inc)->AddRecord(r.schema_id(), r.values()).ok());
    }
    failpoint::Arm("engine.merge", Status::Internal("boom"), /*skip=*/4,
                   /*trips=*/1);
    auto first = (*inc)->Resolve();
    failpoint::DisarmAll();
    ASSERT_FALSE(first.ok()) << "threads=" << threads;
    auto second = (*inc)->Resolve();  // Resume to fixpoint.
    ASSERT_TRUE(second.ok()) << "threads=" << threads;
    EXPECT_EQ((*inc)->Labels(), want->entity_of) << "threads=" << threads;
  }
}

TEST(ParallelEngineTest, ReportRecordsThreadCountAndWorkerActivity) {
  Dataset ds = MovieData(120, 17);
  HeraOptions opts;
  opts.num_threads = 4;
  opts.collect_report = true;
  auto result = Hera(opts).Run(ds);
  ASSERT_TRUE(result.ok());
  const std::string json = result->report.ToJson();
#ifndef HERA_DISABLE_OBS
  EXPECT_NE(json.find("parallel.num_threads"), std::string::npos);
  EXPECT_NE(json.find("tokens.interned"), std::string::npos);
#else
  // Instrumentation compiled out: the report is empty-but-valid.
  EXPECT_TRUE(result->report.empty());
  EXPECT_NE(json.find("\"collected\""), std::string::npos);
#endif
}

#ifndef HERA_DISABLE_OBS

TEST(ParallelEngineTest, WorkerSpansCoverJoinAndVerifyPhases) {
  Dataset ds = MovieData(200, 19);
  HeraOptions opts;
  opts.num_threads = 4;
  opts.collect_report = true;
  auto result = Hera(opts).Run(ds);
  ASSERT_TRUE(result.ok());
  const obs::RunReport& r = result->report;
  ASSERT_FALSE(r.worker_spans.empty());
  std::set<std::string> phases;
  size_t max_worker = 0;
  for (const obs::WorkerSpanRecord& s : r.worker_spans) {
    phases.insert(s.name);
    max_worker = std::max(max_worker, s.worker);
    EXPECT_LT(s.worker, 4u);
    EXPECT_GE(s.start_ms, 0.0);
    EXPECT_GE(s.dur_ms, 0.0);
  }
  // The prefix-filter join's probe phase always runs chunked; with 4
  // workers on 200 records more than one worker claims chunks.
  EXPECT_TRUE(phases.count("join.probe") || phases.count("join.tokenize"))
      << "no join worker spans recorded";
  EXPECT_GT(max_worker, 0u);
  EXPECT_EQ(r.dropped_worker_spans, 0u);
}

TEST(ParallelEngineTest, SerialRunRecordsNoWorkerSpans) {
  Dataset ds = MovieData(100, 23);
  HeraOptions opts;
  opts.collect_report = true;  // num_threads = 0: serial.
  auto result = Hera(opts).Run(ds);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->report.worker_spans.empty());
}

// The determinism contract extended to profiling: sampler and worker
// spans observe, never steer. Labels and merge sequences must be
// byte-identical at every thread count with profiling on or off.
TEST(ParallelEngineTest, ProfilingOnOrOffIsByteIdenticalAcrossThreads) {
  Dataset ds = MovieData(150, 29);
  HeraOptions base;
  auto want = Hera(base).Run(ds);
  ASSERT_TRUE(want.ok());
  for (size_t threads : {0u, 4u, 8u}) {
    for (bool profile : {false, true}) {
      HeraOptions opts;
      opts.num_threads = threads;
      if (profile) {
        opts.collect_report = true;
        opts.timeline_interval_ms = 1;
      }
      auto got = Hera(opts).Run(ds);
      ASSERT_TRUE(got.ok());
      EXPECT_EQ(want->entity_of, got->entity_of)
          << "threads=" << threads << " profile=" << profile;
      EXPECT_EQ(want->stats.merge_sequence, got->stats.merge_sequence)
          << "threads=" << threads << " profile=" << profile;
    }
  }
}

// TSan target: the sampler thread reads its probes while 4 workers and
// the controller mutate the run. Any non-atomic shared read would
// surface here under -DHERA_SANITIZE=thread.
TEST(ParallelEngineTest, ConcurrentSamplerIsRaceFreeUnderLoad) {
  Dataset ds = MovieData(200, 31);
  HeraOptions opts;
  opts.num_threads = 4;
  opts.timeline_interval_ms = 1;  // Aggressive tick while resolving.
  auto result = Hera(opts).Run(ds);
  ASSERT_TRUE(result.ok());
  ASSERT_TRUE(result->report.collected);
  EXPECT_GE(result->report.timeline.samples.size(), 2u);
  EXPECT_GT(result->stats.merges, 0u);
}

#endif  // HERA_DISABLE_OBS

}  // namespace
}  // namespace hera
