// Durability tests: the checksummed codec, snapshot/WAL round-trips,
// corruption fuzzing, and end-to-end crash/resume equivalence — the
// checkpointed artifacts must either reconstruct the engine
// byte-for-byte or fail with a clean Status, never crash or silently
// diverge.

#include <algorithm>
#include <cstdint>
#include <filesystem>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "common/failpoint.h"
#include "common/file_util.h"
#include "common/run_guard.h"
#include "common/status.h"
#include "core/hera.h"
#include "core/incremental.h"
#include "core/options.h"
#include "data/ambiguity_generator.h"
#include "data/publication_generator.h"
#ifndef HERA_DISABLE_OBS
#include "obs/perfetto.h"
#endif
#include "persist/checkpoint.h"
#include "persist/codec.h"
#include "record/dataset.h"
#include "testing_util.h"

namespace hera {
namespace {

using persist::AppendBlock;
using persist::ByteReader;
using persist::ByteWriter;
using persist::Crc32;
using persist::ReadBlock;

/// Fresh, empty per-test directory under the gtest temp root.
std::string TestDir(const std::string& name) {
  std::string dir = std::string(::testing::TempDir()) + "/persist_" + name;
  std::filesystem::remove_all(dir);
  return dir;
}

/// A dataset small enough for tight test loops but noisy enough (extra
/// nulls and typos) to need several compare-and-merge passes with some
/// groups going through KM verification rather than the bound shortcuts.
Dataset MakePublications(uint64_t seed = 7) {
  PublicationGeneratorConfig config;
  config.num_records = 160;
  config.num_entities = 25;
  config.seed = seed;
  config.null_prob = 0.2;
  config.corruption.typo_prob = 0.45;
  return GeneratePublicationDataset(config);
}

/// A verification-heavy corpus for budget-cut tests: the publication
/// generator resolves almost entirely via bound shortcuts, while every
/// merge here costs a KM verification (plus decoys that verify to
/// non-matches), so small budgets genuinely bind mid-run.
Dataset MakeAmbiguous() {
  AmbiguityGeneratorConfig config;
  config.num_entities = 12;
  config.num_decoys = 8;
  config.seed = 7;
  return GenerateAmbiguousDataset(config);
}

/// Snapshot filenames in `dir`, ascending by epoch.
std::vector<std::string> SnapshotFiles(const std::string& dir) {
  std::vector<std::string> files;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    std::string name = entry.path().filename().string();
    if (name.rfind("snapshot-", 0) == 0) files.push_back(entry.path().string());
  }
  std::sort(files.begin(), files.end());
  return files;
}

/// Flips one bit of the file in place.
void FlipFileBit(const std::string& path, size_t byte, int bit) {
  auto content = ReadFileToString(path);
  ASSERT_TRUE(content.ok());
  std::string bytes = std::move(content).value();
  ASSERT_LT(byte, bytes.size());
  bytes[byte] = static_cast<char>(bytes[byte] ^ (1 << bit));
  ASSERT_TRUE(AtomicWriteFile(path, bytes).ok());
}

// ---------------------------------------------------------------------------
// Codec primitives.

TEST(PersistCodecTest, ScalarAndStringRoundTrip) {
  ByteWriter w;
  w.PutU8(0xAB);
  w.PutU32(0xDEADBEEF);
  w.PutU64(0x0123456789ABCDEFull);
  w.PutF64(-1234.5678);
  w.PutF64(0.0);
  w.PutString("hello");
  w.PutString("");  // Empty strings must survive.
  ByteReader r(w.str());
  uint8_t u8 = 0;
  uint32_t u32 = 0;
  uint64_t u64 = 0;
  double f1 = 0, f2 = 1;
  std::string s1, s2 = "x";
  ASSERT_TRUE(r.GetU8(&u8).ok());
  ASSERT_TRUE(r.GetU32(&u32).ok());
  ASSERT_TRUE(r.GetU64(&u64).ok());
  ASSERT_TRUE(r.GetF64(&f1).ok());
  ASSERT_TRUE(r.GetF64(&f2).ok());
  ASSERT_TRUE(r.GetString(&s1).ok());
  ASSERT_TRUE(r.GetString(&s2).ok());
  EXPECT_EQ(u8, 0xAB);
  EXPECT_EQ(u32, 0xDEADBEEFu);
  EXPECT_EQ(u64, 0x0123456789ABCDEFull);
  EXPECT_EQ(f1, -1234.5678);  // Bit-pattern transport: exact.
  EXPECT_EQ(f2, 0.0);
  EXPECT_EQ(s1, "hello");
  EXPECT_EQ(s2, "");
  EXPECT_TRUE(r.AtEnd());
  // Reading past the end is a clean error, not UB.
  EXPECT_FALSE(r.GetU8(&u8).ok());
}

TEST(PersistCodecTest, ReaderRefusesTruncatedString) {
  ByteWriter w;
  w.PutString("hello");
  std::string bytes = w.str();
  // Length prefix says 5 but only 3 payload bytes remain.
  ByteReader r(std::string_view(bytes.data(), bytes.size() - 2));
  std::string s;
  EXPECT_EQ(r.GetString(&s).code(), StatusCode::kIOError);
}

TEST(PersistCodecTest, BlockFramingRoundTripAndCleanEof) {
  std::string file;
  AppendBlock(&file, "first payload");
  AppendBlock(&file, "");  // Empty payloads are legal blocks.
  AppendBlock(&file, "third");
  size_t pos = 0;
  std::string payload;
  ASSERT_TRUE(ReadBlock(file, &pos, &payload).ok());
  EXPECT_EQ(payload, "first payload");
  ASSERT_TRUE(ReadBlock(file, &pos, &payload).ok());
  EXPECT_EQ(payload, "");
  ASSERT_TRUE(ReadBlock(file, &pos, &payload).ok());
  EXPECT_EQ(payload, "third");
  EXPECT_EQ(ReadBlock(file, &pos, &payload).code(), StatusCode::kNotFound);
}

TEST(PersistCodecTest, BlockFramingDetectsTruncationAndBitFlips) {
  std::string file;
  AppendBlock(&file, "some payload worth protecting");
  // Any truncation is an IOError, never a bogus payload.
  for (size_t n = 1; n < file.size(); ++n) {
    size_t pos = 0;
    std::string payload;
    EXPECT_EQ(ReadBlock(std::string_view(file.data(), n), &pos, &payload)
                  .code(),
              StatusCode::kIOError)
        << "truncated to " << n;
  }
  // Any single-bit flip fails the CRC (or the frame checks).
  for (size_t byte = 0; byte < file.size(); ++byte) {
    for (int bit = 0; bit < 8; ++bit) {
      std::string mutated = file;
      mutated[byte] = static_cast<char>(mutated[byte] ^ (1 << bit));
      size_t pos = 0;
      std::string payload;
      EXPECT_FALSE(ReadBlock(mutated, &pos, &payload).ok())
          << "flip at byte " << byte << " bit " << bit;
    }
  }
}

TEST(PersistCodecTest, Crc32MatchesKnownVector) {
  // IEEE CRC-32 of "123456789" is the classic check value.
  EXPECT_EQ(Crc32("123456789"), 0xCBF43926u);
  EXPECT_EQ(Crc32(""), 0u);
}

// ---------------------------------------------------------------------------
// File utilities.

TEST(FileUtilTest, AtomicWriteReadBackAndOverwrite) {
  std::string dir = TestDir("file_util");
  ASSERT_TRUE(EnsureDirectory(dir).ok());
  std::string path = dir + "/artifact.json";
  ASSERT_TRUE(AtomicWriteFile(path, "v1").ok());
  auto back = ReadFileToString(path);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(*back, "v1");
  ASSERT_TRUE(AtomicWriteFile(path, "v2 is longer").ok());
  back = ReadFileToString(path);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(*back, "v2 is longer");
  // No temporary siblings left behind.
  size_t entries = 0;
  for (const auto& e : std::filesystem::directory_iterator(dir)) {
    (void)e;
    ++entries;
  }
  EXPECT_EQ(entries, 1u);
}

TEST(FileUtilTest, ReadMissingFileIsNotFound) {
  EXPECT_EQ(ReadFileToString(TestDir("missing") + "/nope").status().code(),
            StatusCode::kNotFound);
}

TEST(FileUtilTest, EnsureDirectoryCreatesNestedAndIsIdempotent) {
  std::string dir = TestDir("nested") + "/a/b/c";
  ASSERT_TRUE(EnsureDirectory(dir).ok());
  ASSERT_TRUE(EnsureDirectory(dir).ok());
  EXPECT_TRUE(std::filesystem::is_directory(dir));
}

// ---------------------------------------------------------------------------
// WAL entry codec.

persist::WalEntry MakeWalEntry(uint64_t seq) {
  persist::WalEntry e;
  e.epoch = 3;
  e.seq = seq;
  e.iteration = 10 + seq;
  e.pruned = 4;
  e.direct = 1;
  e.candidates = 9;
  e.comparisons = 5;
  e.deferred_groups = 2;
  e.simplified_sum = 12.5;
  e.simplified_count = 3;
  persist::WalMerge m;
  m.i = 7;
  m.j = 42;
  m.matching = {{0, 1, 0.9}, {2, 2, 0.75}};
  m.predictions = {{AttrRef{0, 1}, AttrRef{1, 2}}};
  e.merges.push_back(std::move(m));
  e.deferred_after = {{3, 9}, {11, 12}};
  return e;
}

TEST(PersistWalTest, EntryEncodingRoundTripsExactly) {
  persist::WalEntry e = MakeWalEntry(0);
  auto decoded = persist::DecodeWalEntry(persist::EncodeWalEntry(e));
  ASSERT_TRUE(decoded.ok());
  // Re-encoding the decoded entry must reproduce the bytes: the codec
  // is deterministic and loses nothing.
  EXPECT_EQ(persist::EncodeWalEntry(*decoded), persist::EncodeWalEntry(e));
  EXPECT_EQ(decoded->merges.size(), 1u);
  EXPECT_EQ(decoded->merges[0].matching.size(), 2u);
  EXPECT_EQ(decoded->merges[0].predictions.size(), 1u);
  EXPECT_EQ(decoded->deferred_after, e.deferred_after);
}

TEST(PersistWalTest, ImageReaderDropsTornTailKeepsPrefix) {
  std::string image;
  AppendBlock(&image, persist::EncodeWalEntry(MakeWalEntry(0)));
  const size_t first_block_end = image.size();
  AppendBlock(&image, persist::EncodeWalEntry(MakeWalEntry(1)));

  persist::WalReadResult whole = persist::ReadWalImage(image, 3);
  EXPECT_EQ(whole.entries.size(), 2u);
  EXPECT_FALSE(whole.torn);

  // Every truncation yields a clean prefix of the full entry list, torn
  // unless the cut lands exactly on a block boundary.
  for (size_t n = 0; n < image.size(); ++n) {
    persist::WalReadResult r =
        persist::ReadWalImage(std::string_view(image.data(), n), 3);
    ASSERT_LE(r.entries.size(), 2u);
    for (size_t k = 0; k < r.entries.size(); ++k) {
      EXPECT_EQ(r.entries[k].seq, k);
      EXPECT_EQ(persist::EncodeWalEntry(r.entries[k]),
                persist::EncodeWalEntry(whole.entries[k]));
    }
    if (n != 0 && n != first_block_end) {
      EXPECT_TRUE(r.torn) << "len " << n;
    }
  }
  // Bit flips never yield extra or reordered entries.
  for (size_t byte = 0; byte < image.size(); ++byte) {
    std::string mutated = image;
    mutated[byte] = static_cast<char>(mutated[byte] ^ 1);
    persist::WalReadResult r = persist::ReadWalImage(mutated, 3);
    ASSERT_LE(r.entries.size(), 2u);
    for (size_t k = 0; k < r.entries.size(); ++k) {
      EXPECT_EQ(r.entries[k].seq, k);
    }
  }
}

TEST(PersistWalTest, ImageReaderRejectsWrongEpochAndSequenceBreak) {
  std::string image;
  AppendBlock(&image, persist::EncodeWalEntry(MakeWalEntry(0)));
  persist::WalReadResult wrong_epoch = persist::ReadWalImage(image, 4);
  EXPECT_TRUE(wrong_epoch.entries.empty());
  EXPECT_TRUE(wrong_epoch.torn);

  std::string gap;
  AppendBlock(&gap, persist::EncodeWalEntry(MakeWalEntry(0)));
  AppendBlock(&gap, persist::EncodeWalEntry(MakeWalEntry(2)));  // seq 1 missing
  persist::WalReadResult broken = persist::ReadWalImage(gap, 3);
  EXPECT_EQ(broken.entries.size(), 1u);
  EXPECT_TRUE(broken.torn);
}

// ---------------------------------------------------------------------------
// Snapshot round-trip + fuzz, over a real engine state.

/// Runs a checkpointed batch resolution and returns the newest
/// snapshot's raw bytes.
std::string CheckpointedSnapshotImage(const std::string& dir) {
  Dataset ds = testing_util::MakeCustomersDataset();
  HeraOptions opts;
  opts.checkpoint_dir = dir;
  opts.checkpoint_every = 1;
  auto result = Hera(opts).Run(ds);
  EXPECT_TRUE(result.ok()) << result.status();
  std::vector<std::string> snaps = SnapshotFiles(dir);
  EXPECT_FALSE(snaps.empty());
  auto image = ReadFileToString(snaps.back());
  EXPECT_TRUE(image.ok());
  return std::move(image).value();
}

TEST(PersistSnapshotTest, DecodeEncodeIsByteIdentical) {
  std::string image = CheckpointedSnapshotImage(TestDir("snap_roundtrip"));
  auto decoded = persist::DecodeSnapshot(image);
  ASSERT_TRUE(decoded.ok()) << decoded.status();
  // The engine wrote real super records, index pairs, votes and stats;
  // re-encoding what we decoded must reproduce the file exactly.
  EXPECT_EQ(persist::EncodeSnapshot(decoded->header, decoded->state), image);
  EXPECT_GT(decoded->state.num_records, 0u);
  EXPECT_FALSE(decoded->state.super_records.empty());
  EXPECT_FALSE(decoded->state.stats.merge_sequence.empty());
}

TEST(PersistSnapshotTest, FuzzTruncationAtEveryByteFailsCleanly) {
  std::string image = CheckpointedSnapshotImage(TestDir("snap_trunc"));
  ASSERT_GT(image.size(), 64u);
  for (size_t n = 0; n < image.size(); ++n) {
    auto decoded =
        persist::DecodeSnapshot(std::string_view(image.data(), n));
    EXPECT_FALSE(decoded.ok()) << "truncated to " << n << " decoded";
  }
}

TEST(PersistSnapshotTest, FuzzSingleBitFlipsFailCleanly) {
  std::string image = CheckpointedSnapshotImage(TestDir("snap_flip"));
  for (size_t byte = 0; byte < image.size(); ++byte) {
    for (int bit = 0; bit < 8; ++bit) {
      std::string mutated = image;
      mutated[byte] = static_cast<char>(mutated[byte] ^ (1 << bit));
      auto decoded = persist::DecodeSnapshot(mutated);
      EXPECT_FALSE(decoded.ok())
          << "flip at byte " << byte << " bit " << bit << " decoded";
    }
  }
}

TEST(PersistSnapshotTest, FingerprintsSeparateOptionsAndData) {
  HeraOptions a;
  HeraOptions b = a;
  b.xi = 0.61;
  EXPECT_NE(persist::FingerprintOptions(a), persist::FingerprintOptions(b));
  // Resume may legitimately change caps, threads, guard, cadence.
  HeraOptions c = a;
  c.max_iterations = 3;
  c.num_threads = 8;
  c.checkpoint_every = 1;
  c.guard.WithTimeoutMs(5.0);
  EXPECT_EQ(persist::FingerprintOptions(a), persist::FingerprintOptions(c));

  Dataset d1 = MakePublications(7);
  Dataset d2 = MakePublications(8);
  EXPECT_NE(persist::FingerprintDataset(d1), persist::FingerprintDataset(d2));
  EXPECT_EQ(persist::FingerprintSchemas(d1.schemas()),
            persist::FingerprintSchemas(d2.schemas()));
}

// ---------------------------------------------------------------------------
// End-to-end batch crash/resume.

TEST(PersistResumeTest, ResumeReproducesReferenceAtEveryIterationCut) {
  Dataset ds = MakePublications();
  HeraOptions base;
  auto ref = Hera(base).Run(ds);
  ASSERT_TRUE(ref.ok());
  ASSERT_GE(ref->stats.iterations, 3u)
      << "dataset too easy to exercise multi-pass resume";

  // Cut the run at every iteration boundary (the iteration cap stops
  // at exactly the safe points a kill + recovery would resume from)
  // and resume; the merge sequence and labels must be byte-identical
  // to the uninterrupted reference, with no double-applied merges.
  for (size_t k = 1; k < ref->stats.iterations; ++k) {
    HeraOptions opts = base;
    opts.checkpoint_dir = TestDir("cut_" + std::to_string(k));
    opts.checkpoint_every = 1;
    opts.max_iterations = k;
    auto cut = Hera(opts).Run(ds);
    ASSERT_TRUE(cut.ok()) << cut.status();
    ASSERT_EQ(cut->stats.outcome, RunOutcome::kIterationCap);

    HeraOptions ropts = opts;
    ropts.max_iterations = base.max_iterations;
    auto resumed = Hera(ropts).Resume(ds);
    ASSERT_TRUE(resumed.ok()) << resumed.status();
    EXPECT_EQ(resumed->stats.outcome, RunOutcome::kCompleted);
    EXPECT_EQ(resumed->entity_of, ref->entity_of) << "cut at " << k;
    EXPECT_EQ(resumed->stats.merge_sequence, ref->stats.merge_sequence)
        << "cut at " << k;
    EXPECT_EQ(resumed->stats.merges, ref->stats.merges);
    EXPECT_EQ(resumed->stats.comparisons, ref->stats.comparisons);
    EXPECT_EQ(resumed->stats.iterations, ref->stats.iterations);
    std::filesystem::remove_all(opts.checkpoint_dir);
  }
}

// Progressive budget cuts are durable stopping points: cutting a run
// at any verification budget and resuming with the budget lifted must
// land on exactly the labels of the uninterrupted run. Deferral is
// confluent — the cut changes *when* groups are verified, never what
// the fixpoint concludes — and labels are canonical min-rid names, so
// label equality is exact, not just partition-isomorphic.
TEST(PersistResumeTest, ResumeReproducesLabelsAtEveryBudgetCut) {
  Dataset ds = MakeAmbiguous();
  HeraOptions base;
  auto ref = Hera(base).Run(ds);
  ASSERT_TRUE(ref.ok());

  // The cut grid must cover the *governed progressive* run's own
  // verification count: the frontier reorders verification, so its
  // total can differ from the canonical run's. A budget of k binds iff
  // the unlimited governed run spends more than k.
  HeraOptions gauge = base;
  gauge.progressive = true;
  gauge.guard.WithMaxVerifications(1u << 30);
  auto gauged = Hera(gauge).Run(ds);
  ASSERT_TRUE(gauged.ok());
  ASSERT_EQ(gauged->stats.outcome, RunOutcome::kCompleted);
  ASSERT_EQ(gauged->entity_of, ref->entity_of);
  const size_t total_verifications = gauged->stats.candidates;
  ASSERT_GE(total_verifications, 8u)
      << "dataset too easy to exercise budget cuts";

  // Serial + ordered sweeps a dense grid of cut points; the other
  // backend/thread combinations spot-check a coarse set — the cut
  // machinery is identical, only join/phase-A internals differ.
  struct Config {
    IndexBackend backend;
    size_t threads;
    bool dense;
  };
  const Config configs[] = {
      {IndexBackend::kOrdered, 0, true},
      {IndexBackend::kOrdered, 4, false},
      {IndexBackend::kFlat, 0, false},
      {IndexBackend::kFlat, 4, false},
  };
  for (const Config& config : configs) {
    std::vector<size_t> cuts;
    if (config.dense) {
      const size_t stride = std::max<size_t>(1, total_verifications / 12);
      for (size_t k = 1; k < total_verifications; k += stride) cuts.push_back(k);
    } else {
      cuts = {1, total_verifications / 2, total_verifications - 1};
    }
    for (size_t k : cuts) {
      HeraOptions opts = base;
      opts.index_backend = config.backend;
      opts.num_threads = config.threads;
      opts.progressive = true;
      opts.checkpoint_dir = TestDir("budget_cut_" + std::to_string(k));
      opts.checkpoint_every = 1;
      opts.guard.WithMaxVerifications(k);
      auto cut = Hera(opts).Run(ds);
      ASSERT_TRUE(cut.ok()) << cut.status();
      ASSERT_EQ(cut->stats.outcome, RunOutcome::kTruncatedBudget)
          << "budget " << k;
      ASSERT_EQ(cut->stats.candidates, k);

      HeraOptions ropts = opts;
      ropts.guard = RunGuard();  // Lift the budget; fresh guard.
      auto resumed = Hera(ropts).Resume(ds);
      ASSERT_TRUE(resumed.ok()) << resumed.status();
      EXPECT_EQ(resumed->stats.outcome, RunOutcome::kCompleted)
          << "budget " << k;
      EXPECT_EQ(resumed->entity_of, ref->entity_of)
          << "budget " << k << " backend "
          << (config.backend == IndexBackend::kFlat ? "flat" : "ordered")
          << " threads " << config.threads;
      std::filesystem::remove_all(opts.checkpoint_dir);
    }
  }
}

TEST(PersistResumeTest, ResumeAfterCompletedRunIsIdempotent) {
  Dataset ds = MakePublications();
  HeraOptions opts;
  opts.checkpoint_dir = TestDir("idempotent");
  opts.checkpoint_every = 2;
  auto ref = Hera(opts).Run(ds);
  ASSERT_TRUE(ref.ok());
  ASSERT_EQ(ref->stats.outcome, RunOutcome::kCompleted);
  auto resumed = Hera(opts).Resume(ds);
  ASSERT_TRUE(resumed.ok()) << resumed.status();
  EXPECT_EQ(resumed->entity_of, ref->entity_of);
  EXPECT_EQ(resumed->stats.merge_sequence, ref->stats.merge_sequence);
  EXPECT_EQ(resumed->stats.merges, ref->stats.merges);
}

TEST(PersistResumeTest, ResumeWithoutSnapshotIsNotFound) {
  Dataset ds = MakePublications();
  HeraOptions opts;
  opts.checkpoint_dir = TestDir("empty_dir");
  ASSERT_TRUE(EnsureDirectory(opts.checkpoint_dir).ok());
  EXPECT_EQ(Hera(opts).Resume(ds).status().code(), StatusCode::kNotFound);
  // A directory that does not exist at all reads the same way.
  opts.checkpoint_dir = TestDir("never_created");
  EXPECT_EQ(Hera(opts).Resume(ds).status().code(), StatusCode::kNotFound);
}

TEST(PersistResumeTest, ResumeRefusesChangedOptionsDatasetOrKind) {
  Dataset ds = MakePublications();
  HeraOptions opts;
  opts.checkpoint_dir = TestDir("fingerprints");
  opts.max_iterations = 2;  // Leave the run unfinished, checkpointed.
  opts.checkpoint_every = 1;
  ASSERT_TRUE(Hera(opts).Run(ds).ok());

  HeraOptions changed = opts;
  changed.xi = 0.62;
  EXPECT_EQ(Hera(changed).Resume(ds).status().code(),
            StatusCode::kFailedPrecondition);

  Dataset other = MakePublications(13);
  EXPECT_EQ(Hera(opts).Resume(other).status().code(),
            StatusCode::kFailedPrecondition);

  // A batch checkpoint cannot be opened as an incremental run.
  auto inc = IncrementalHera::Restore(opts, ds.schemas());
  EXPECT_EQ(inc.status().code(), StatusCode::kFailedPrecondition);
}

TEST(PersistResumeTest, CorruptNewestSnapshotFallsBackCorruptAllFails) {
  Dataset ds = MakePublications();
  HeraOptions opts;
  opts.checkpoint_dir = TestDir("fallback");
  opts.checkpoint_every = 1;
  auto ref = Hera(opts).Run(ds);
  ASSERT_TRUE(ref.ok());

  std::vector<std::string> snaps = SnapshotFiles(opts.checkpoint_dir);
  ASSERT_GE(snaps.size(), 2u) << "retention should keep two epochs";
  // A flipped bit in the newest snapshot: recovery falls back to the
  // previous epoch (and its WAL) and still reproduces the reference.
  FlipFileBit(snaps.back(), 100, 3);
  auto resumed = Hera(opts).Resume(ds);
  ASSERT_TRUE(resumed.ok()) << resumed.status();
  EXPECT_EQ(resumed->entity_of, ref->entity_of);
  EXPECT_EQ(resumed->stats.merge_sequence, ref->stats.merge_sequence);

  // With every snapshot corrupt there is nothing left to fall back to.
  for (const std::string& path : SnapshotFiles(opts.checkpoint_dir)) {
    FlipFileBit(path, 70, 5);
  }
  EXPECT_EQ(Hera(opts).Resume(ds).status().code(), StatusCode::kIOError);
}

TEST(PersistResumeTest, TornWalTailIsDroppedNotFatal) {
  Dataset ds = MakePublications();
  HeraOptions opts;
  opts.checkpoint_dir = TestDir("torn_wal");
  opts.checkpoint_every = 1;
  auto ref = Hera(opts).Run(ds);
  ASSERT_TRUE(ref.ok());

  // Simulate a crash mid-append: garbage after the newest epoch's
  // snapshot looks like a torn WAL block and must be dropped cleanly.
  std::vector<std::string> snaps = SnapshotFiles(opts.checkpoint_dir);
  ASSERT_FALSE(snaps.empty());
  std::string newest = snaps.back();
  std::string wal_path = newest;
  wal_path.replace(wal_path.rfind("snapshot-"), 9, "wal-");
  ASSERT_TRUE(AtomicWriteFile(wal_path, "garbage-not-a-valid-frame").ok());
  auto resumed = Hera(opts).Resume(ds);
  ASSERT_TRUE(resumed.ok()) << resumed.status();
  EXPECT_EQ(resumed->entity_of, ref->entity_of);
}

#ifndef HERA_DISABLE_OBS

TEST(PersistResumeTest, TimelineStitchesAcrossResume) {
  Dataset ds = MakePublications();
  HeraOptions base;
  auto ref = Hera(base).Run(ds);
  ASSERT_TRUE(ref.ok());
  ASSERT_GE(ref->stats.iterations, 3u);

  // Cut the run at the first iteration boundary with profiling on.
  HeraOptions opts = base;
  opts.checkpoint_dir = TestDir("timeline_stitch");
  opts.checkpoint_every = 1;
  opts.max_iterations = 1;
  opts.collect_report = true;
  opts.timeline_interval_ms = 1;
  auto cut = Hera(opts).Run(ds);
  ASSERT_TRUE(cut.ok()) << cut.status();
  ASSERT_EQ(cut->stats.outcome, RunOutcome::kIterationCap);
  ASSERT_TRUE(cut->report.collected);
  ASSERT_GE(cut->report.timeline.samples.size(), 2u);
  // The pre-cut process's timeline starts at (near) zero run time.
  EXPECT_LT(cut->report.timeline.samples.front().t_ms,
            cut->stats.index_build_ms + cut->stats.total_ms + 1.0);
  const double cut_elapsed = cut->stats.index_build_ms + cut->stats.total_ms;

  // Resume in a fresh process (engine): the restored time base stitches
  // the resumed samples onto the end of the pre-cut run's clock.
  HeraOptions ropts = opts;
  ropts.max_iterations = base.max_iterations;
  auto resumed = Hera(ropts).Resume(ds);
  ASSERT_TRUE(resumed.ok()) << resumed.status();
  EXPECT_EQ(resumed->entity_of, ref->entity_of);
  EXPECT_EQ(resumed->stats.merge_sequence, ref->stats.merge_sequence);

  const obs::RunReport& r = resumed->report;
  ASSERT_TRUE(r.collected);
  ASSERT_GE(r.timeline.samples.size(), 2u);
  // Stitched: the resumed process's first sample continues at the
  // restored run time, not at zero.
  EXPECT_GE(r.timeline.samples.front().t_ms, cut_elapsed);
  double prev = 0.0;
  for (const auto& s : r.timeline.samples) {
    EXPECT_GE(s.t_ms, prev);
    prev = s.t_ms;
  }
  // Per-iteration quality rows continue on the same stitched clock.
  ASSERT_FALSE(r.iterations.empty());
  EXPECT_GE(r.iterations.front().t_ms, cut_elapsed);
  prev = 0.0;
  for (const auto& row : r.iterations) {
    EXPECT_GE(row.t_ms, prev);
    prev = row.t_ms;
  }

  // Checkpoint epochs surface in the exported trace as instant events.
  const std::string trace = obs::ExportChromeTrace(r);
  EXPECT_NE(trace.find("persist.snapshot"), std::string::npos);
  EXPECT_NE(trace.find("\"ph\":\"i\""), std::string::npos);
}

#endif  // HERA_DISABLE_OBS

// ---------------------------------------------------------------------------
// Incremental restore after a governed (truncated) round.

#ifndef HERA_DISABLE_FAILPOINTS

TEST(PersistIncrementalTest, RestoreContinuesGuardTruncatedRoundExactly) {
  Dataset ds = MakePublications(3);

  // Reference: one uninterrupted incremental round, with verify.km
  // armed as a pure hit counter (trips=0 never fires, only counts).
  failpoint::Arm("verify.km", Status::OK(), /*skip=*/0, /*trips=*/0);
  auto ref_or = IncrementalHera::Create(HeraOptions{}, ds.schemas());
  ASSERT_TRUE(ref_or.ok());
  IncrementalHera& ref = **ref_or;
  for (const Record& r : ds.records()) {
    ASSERT_TRUE(ref.AddRecord(r.schema_id(), r.values()).ok());
  }
  ASSERT_TRUE(ref.Resolve().ok());
  ASSERT_EQ(ref.stats().outcome, RunOutcome::kCompleted);
  const size_t ref_verifications = failpoint::HitCount("verify.km");
  const size_t ref_merges = ref.stats().merges;
  const std::vector<uint32_t> ref_labels = ref.Labels();
  const auto ref_merge_sequence = ref.stats().merge_sequence;
  failpoint::DisarmAll();
  ASSERT_GE(ref_verifications, 2u);
  ASSERT_GE(ref_merges, 8u);

  // Interrupted: the guard's cancellation token fires mid-round, after
  // roughly half the reference's merges — a deterministic stand-in for
  // a deadline expiring mid-fixpoint. The engine stops at the next
  // pass boundary with the round checkpointed.
  HeraOptions opts;
  opts.checkpoint_dir = TestDir("inc_truncated");
  opts.checkpoint_every = 1;
  CancellationToken token = CancellationToken::Make();
  opts.guard.WithCancellation(token);
  failpoint::Arm("verify.km", Status::OK(), /*skip=*/0, /*trips=*/0);
  failpoint::Arm("engine.merge", Status::OK(),
                 /*skip=*/static_cast<int>(ref_merges / 2) - 1, /*trips=*/1);
  int observer_tag = 0;
  failpoint::SetTripObserver(
      &observer_tag, [&token](const char* /*site*/) { token.RequestCancel(); });
  {
    auto inc_or = IncrementalHera::Create(opts, ds.schemas());
    ASSERT_TRUE(inc_or.ok()) << inc_or.status();
    IncrementalHera& inc = **inc_or;
    for (const Record& r : ds.records()) {
      ASSERT_TRUE(inc.AddRecord(r.schema_id(), r.values()).ok());
    }
    auto round = inc.Resolve();
    ASSERT_TRUE(round.ok()) << round.status();
    ASSERT_EQ(inc.stats().outcome, RunOutcome::kTruncatedCancelled);
    EXPECT_LT(inc.stats().merges, ref_merges);
  }  // Destroyed: from here the checkpoint directory is all that's left.
  failpoint::ClearTripObserver(&observer_tag);
  const size_t interrupted_verifications = failpoint::HitCount("verify.km");
  failpoint::DisarmAll();

  // Restore from disk and finish the round. The continuation must
  // neither re-apply a logged merge nor re-verify a logged comparison:
  // the interrupted and resumed verification counts partition the
  // reference's, and the final merge sequence is byte-identical.
  failpoint::Arm("verify.km", Status::OK(), /*skip=*/0, /*trips=*/0);
  HeraOptions ropts = opts;
  ropts.guard = RunGuard();  // The old token stays cancelled; drop it.
  auto restored_or = IncrementalHera::Restore(ropts, ds.schemas());
  ASSERT_TRUE(restored_or.ok()) << restored_or.status();
  IncrementalHera& restored = **restored_or;
  EXPECT_EQ(restored.NumRecords(), ds.size());
  auto finish = restored.Resolve();
  ASSERT_TRUE(finish.ok()) << finish.status();
  const size_t resumed_verifications = failpoint::HitCount("verify.km");
  failpoint::DisarmAll();

  EXPECT_EQ(restored.stats().outcome, RunOutcome::kCompleted);
  EXPECT_EQ(restored.Labels(), ref_labels);
  EXPECT_EQ(restored.stats().merge_sequence, ref_merge_sequence);
  EXPECT_EQ(interrupted_verifications + resumed_verifications,
            ref_verifications)
      << "resume re-verified (or skipped) comparisons";
}

TEST(PersistIncrementalTest, PersistFailpointsAreKnownAndPropagate) {
  std::vector<std::string> sites = failpoint::KnownSites();
  for (const char* site :
       {"persist.snapshot", "persist.wal.append", "persist.recover"}) {
    EXPECT_NE(std::find(sites.begin(), sites.end(), site), sites.end())
        << site;
  }
  // An injected WAL-append failure surfaces through the public API as
  // the armed status, not a crash or a silent success.
  Dataset ds = testing_util::MakeCustomersDataset();
  HeraOptions opts;
  opts.checkpoint_dir = TestDir("fp_propagate");
  opts.checkpoint_every = 1;
  failpoint::Arm("persist.wal.append", Status::IOError("disk full"));
  auto result = Hera(opts).Run(ds);
  failpoint::DisarmAll();
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kIOError);
}

// A short write (ENOSPC-style) while persisting the budget-cut
// checkpoint must degrade to a clean error with the previous epoch
// intact — never a torn or half-replaced snapshot. The failpoint fires
// inside AtomicWriteFile, after the temp file is created but before
// any byte lands, which is exactly the window a full disk hits.
TEST(PersistIncrementalTest, ShortWriteAtBudgetCutKeepsPreviousEpochIntact) {
  Dataset ds = MakeAmbiguous();
  HeraOptions base;
  auto ref = Hera(base).Run(ds);
  ASSERT_TRUE(ref.ok());
  ASSERT_GE(ref->stats.candidates, 4u);

  // Leave a healthy checkpointed prefix on disk: cut by iterations.
  HeraOptions opts = base;
  opts.checkpoint_dir = TestDir("short_write");
  opts.checkpoint_every = 1;
  opts.max_iterations = 1;
  ASSERT_TRUE(Hera(opts).Run(ds).ok());
  std::vector<std::string> before = SnapshotFiles(opts.checkpoint_dir);
  ASSERT_FALSE(before.empty());

  // Resume under a binding budget with the write failpoint armed: the
  // budget cut tries to persist its truncation snapshot, the write
  // dies, and the run surfaces the injected error.
  HeraOptions cut_opts = opts;
  cut_opts.max_iterations = base.max_iterations;
  cut_opts.checkpoint_every = 1000;  // Only the truncation snapshot writes.
  cut_opts.progressive = true;
  cut_opts.guard = RunGuard();
  cut_opts.guard.WithMaxVerifications(2);
  failpoint::Arm("persist.write.short", Status::IOError("injected short write"));
  auto failed = Hera(cut_opts).Resume(ds);
  failpoint::DisarmAll();
  ASSERT_FALSE(failed.ok());
  EXPECT_EQ(failed.status().code(), StatusCode::kIOError);

  // The previous epochs are untouched and every snapshot still decodes;
  // no temp-file debris either.
  std::vector<std::string> after = SnapshotFiles(opts.checkpoint_dir);
  EXPECT_EQ(after, before);
  for (const std::string& path : after) {
    auto image = ReadFileToString(path);
    ASSERT_TRUE(image.ok());
    EXPECT_TRUE(persist::DecodeSnapshot(*image).ok()) << path;
  }
  for (const auto& entry :
       std::filesystem::directory_iterator(opts.checkpoint_dir)) {
    EXPECT_EQ(entry.path().filename().string().find(".tmp."),
              std::string::npos)
        << entry.path();
  }

  // Disarmed, the same directory resumes to the reference labels.
  HeraOptions ropts = opts;
  ropts.max_iterations = base.max_iterations;
  ropts.guard = RunGuard();
  auto resumed = Hera(ropts).Resume(ds);
  ASSERT_TRUE(resumed.ok()) << resumed.status();
  EXPECT_EQ(resumed->stats.outcome, RunOutcome::kCompleted);
  EXPECT_EQ(resumed->entity_of, ref->entity_of);
}

#endif  // HERA_DISABLE_FAILPOINTS

}  // namespace
}  // namespace hera
