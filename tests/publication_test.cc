// Tests for the bibliographic dataset generator, including an
// end-to-end HERA run on the publications domain.

#include <gtest/gtest.h>

#include <set>
#include <string>

#include "core/hera.h"
#include "data/publication_generator.h"
#include "eval/metrics.h"

namespace hera {
namespace {

PublicationGeneratorConfig SmallConfig() {
  PublicationGeneratorConfig config;
  config.num_records = 150;
  config.num_entities = 30;
  config.seed = 11;
  return config;
}

TEST(PublicationGeneratorTest, ProducesRequestedShape) {
  Dataset ds = GeneratePublicationDataset(SmallConfig());
  EXPECT_EQ(ds.size(), 150u);
  EXPECT_EQ(ds.NumEntities(), 30u);
  EXPECT_EQ(ds.schemas().size(), 3u);  // dblp, acm, scholar.
  EXPECT_TRUE(ds.Validate().ok());
  EXPECT_TRUE(ds.has_ground_truth());
}

TEST(PublicationGeneratorTest, TenDistinctConcepts) {
  Dataset ds = GeneratePublicationDataset(SmallConfig());
  EXPECT_EQ(ds.NumDistinctAttributes(), kNumPublicationConcepts);
}

TEST(PublicationGeneratorTest, DeterministicForSeed) {
  Dataset a = GeneratePublicationDataset(SmallConfig());
  Dataset b = GeneratePublicationDataset(SmallConfig());
  ASSERT_EQ(a.size(), b.size());
  EXPECT_EQ(a.entity_of(), b.entity_of());
  for (uint32_t i = 0; i < a.size(); ++i) {
    for (size_t v = 0; v < a.record(i).size(); ++v) {
      EXPECT_EQ(a.record(i).value(v), b.record(i).value(v));
    }
  }
}

TEST(PublicationGeneratorTest, ProfilesShareTitleUnderDifferentNames) {
  auto profiles = StandardPublicationProfiles();
  std::set<std::string> title_attrs;
  for (const auto& p : profiles) {
    for (const auto& [attr, concept_id] : p.attrs) {
      if (concept_id == kPubTitle) title_attrs.insert(attr);
    }
  }
  EXPECT_EQ(title_attrs.size(), 3u);  // title / paper_title / name.
}

TEST(PublicationGeneratorTest, VenueAbbreviationAppears) {
  PublicationGeneratorConfig config = SmallConfig();
  config.venue_abbrev_prob = 1.0;
  config.corruption = CorruptionOptions{0, 0, 0, 0, 0};
  config.null_prob = 0.0;
  Dataset ds = GeneratePublicationDataset(config);
  // With abbreviation probability 1, every venue value is short.
  bool found_abbrev = false;
  for (const Record& r : ds.records()) {
    const Schema& schema = ds.schemas().Get(r.schema_id());
    for (size_t a = 0; a < schema.size(); ++a) {
      uint32_t concept_id = ds.canonical_attr().at({r.schema_id(),
                                                    static_cast<uint32_t>(a)});
      if (concept_id == kPubVenue && !r.value(a).is_null()) {
        EXPECT_LT(r.value(a).ToString().size(), 15u);
        found_abbrev = true;
      }
    }
  }
  EXPECT_TRUE(found_abbrev);
}

TEST(PublicationGeneratorTest, HeraResolvesPublications) {
  Dataset ds = GeneratePublicationDataset(SmallConfig());
  HeraOptions opts;
  opts.xi = 0.5;
  opts.delta = 0.5;
  auto result = Hera(opts).Run(ds);
  ASSERT_TRUE(result.ok());
  PairMetrics m = EvaluatePairs(result->entity_of, ds.entity_of());
  EXPECT_GT(m.precision, 0.85) << "P=" << m.precision << " R=" << m.recall;
  EXPECT_GT(m.recall, 0.6) << "P=" << m.precision << " R=" << m.recall;
}

TEST(PublicationGeneratorTest, EveryEntityRepresented) {
  PublicationGeneratorConfig config = SmallConfig();
  config.num_records = 40;
  config.num_entities = 40;
  Dataset ds = GeneratePublicationDataset(config);
  std::set<uint32_t> entities(ds.entity_of().begin(), ds.entity_of().end());
  EXPECT_EQ(entities.size(), 40u);
}

}  // namespace
}  // namespace hera
