// Tests for src/record: Schema, Record, SuperRecord (merge semantics of
// Definition 2 / Example 2), Dataset.

#include <gtest/gtest.h>

#include <map>
#include <string>
#include <vector>

#include "record/dataset.h"
#include "record/record.h"
#include "record/schema.h"
#include "record/super_record.h"
#include "testing_util.h"

namespace hera {
namespace {

// ----------------------------------------------------------------- Schema

TEST(SchemaTest, BasicAccessors) {
  Schema s("CustomerI", {"name", "addr", "city"});
  EXPECT_EQ(s.name(), "CustomerI");
  EXPECT_EQ(s.size(), 3u);
  EXPECT_EQ(s.attribute(1), "addr");
}

TEST(SchemaTest, IndexOf) {
  Schema s("S", {"a", "b", "c"});
  EXPECT_EQ(s.IndexOf("b").value(), 1u);
  EXPECT_FALSE(s.IndexOf("zzz").has_value());
}

TEST(SchemaCatalogTest, RegisterAssignsDenseIds) {
  SchemaCatalog cat;
  EXPECT_EQ(cat.Register(Schema("A", {"x"})), 0u);
  EXPECT_EQ(cat.Register(Schema("B", {"y"})), 1u);
  EXPECT_EQ(cat.Get(1).name(), "B");
  EXPECT_EQ(cat.AttrName(AttrRef{0, 0}), "x");
}

TEST(AttrRefTest, Ordering) {
  AttrRef a{0, 1}, b{0, 2}, c{1, 0};
  EXPECT_TRUE(a < b);
  EXPECT_TRUE(b < c);
  EXPECT_TRUE(a == (AttrRef{0, 1}));
}

// ----------------------------------------------------------------- Record

TEST(RecordTest, NumPresentSkipsNulls) {
  Record r(0, 0, {Value("a"), Value(), Value(2.0)});
  EXPECT_EQ(r.size(), 3u);
  EXPECT_EQ(r.NumPresent(), 2u);
}

// ------------------------------------------------------------ SuperRecord

TEST(SuperRecordTest, FromRecordSkipsNullValues) {
  Record r(7, 2, {Value("a"), Value(), Value("c")});
  SuperRecord sr = SuperRecord::FromRecord(r);
  EXPECT_EQ(sr.rid(), 7u);
  EXPECT_EQ(sr.num_fields(), 2u);
  EXPECT_EQ(sr.NumValues(), 2u);
  EXPECT_EQ(sr.members(), (std::vector<uint32_t>{7}));
  // Origins carry the schema attribute positions (nulls skipped).
  EXPECT_EQ(sr.field(0).value(0).origin, (AttrRef{2, 0}));
  EXPECT_EQ(sr.field(1).value(0).origin, (AttrRef{2, 2}));
}

TEST(SuperRecordTest, MergeUnionsMatchedFieldsAndAppendsRest) {
  // Mirrors Example 2: merge r1 and r6 of the motivating example.
  Dataset ds = testing_util::MakeCustomersDataset();
  SuperRecord r1 = SuperRecord::FromRecord(ds.record(0));
  SuperRecord r6 = SuperRecord::FromRecord(ds.record(5));
  // Matching: name-name(0,0), address-addr(1,1), email-mailbox(2,2),
  // ConType-ConType(4,4). r6's Tel (field 3) is unmatched.
  std::vector<FieldMatch> matching = {
      {0, 0, 1.0}, {1, 1, 1.0}, {2, 2, 1.0}, {4, 4, 0.9}};
  SuperRecord merged = SuperRecord::Merge(r1, r6, matching, 0);

  EXPECT_EQ(merged.rid(), 0u);
  EXPECT_EQ(merged.members(), (std::vector<uint32_t>{0, 5}));
  // 5 fields from r1 + 1 unmatched from r6 (Tel).
  EXPECT_EQ(merged.num_fields(), 6u);
  // ConType field stores both variants (Example 2).
  EXPECT_EQ(merged.field(4).size(), 2u);
  // Identical values dedup: name/addr/email fields keep one value.
  EXPECT_EQ(merged.field(0).size(), 1u);
  EXPECT_EQ(merged.field(1).size(), 1u);
  EXPECT_EQ(merged.field(2).size(), 1u);
  // Unmatched Tel appended last.
  EXPECT_EQ(merged.field(5).value(0).value.ToString(), "831-432");
}

TEST(SuperRecordTest, MergeRemapCoversEveryInputValue) {
  Dataset ds = testing_util::MakeCustomersDataset();
  SuperRecord r1 = SuperRecord::FromRecord(ds.record(0));
  SuperRecord r6 = SuperRecord::FromRecord(ds.record(5));
  std::vector<FieldMatch> matching = {
      {0, 0, 1.0}, {1, 1, 1.0}, {2, 2, 1.0}, {4, 4, 0.9}};
  std::vector<std::pair<ValueLabel, ValueLabel>> remap;
  SuperRecord merged = SuperRecord::Merge(r1, r6, matching, 0, &remap);

  EXPECT_EQ(remap.size(), r1.NumValues() + r6.NumValues());
  std::map<ValueLabel, ValueLabel> m(remap.begin(), remap.end());
  EXPECT_EQ(m.size(), remap.size()) << "old labels must be unique";
  for (const auto& [from, to] : m) {
    EXPECT_TRUE(from.rid == 0 || from.rid == 5);
    EXPECT_EQ(to.rid, 0u);
    // New label must point at the identical value in the merged record.
    const SuperRecord& src = from.rid == 0 ? r1 : r6;
    EXPECT_EQ(merged.field(to.fid).value(to.vid).value,
              src.field(from.fid).value(from.vid).value);
  }
}

TEST(SuperRecordTest, MergeDeduplicatedValueMapsToSurvivor) {
  Dataset ds = testing_util::MakeCustomersDataset();
  SuperRecord r1 = SuperRecord::FromRecord(ds.record(0));
  SuperRecord r6 = SuperRecord::FromRecord(ds.record(5));
  std::vector<FieldMatch> matching = {{0, 0, 1.0}};
  std::vector<std::pair<ValueLabel, ValueLabel>> remap;
  SuperRecord merged = SuperRecord::Merge(r1, r6, matching, 0, &remap);
  // "John" from r6 deduplicates onto r1's "John": both map to (0,0,0).
  std::map<ValueLabel, ValueLabel> m(remap.begin(), remap.end());
  EXPECT_EQ(m.at(ValueLabel{0, 0, 0}), (ValueLabel{0, 0, 0}));
  EXPECT_EQ(m.at(ValueLabel{5, 0, 0}), (ValueLabel{0, 0, 0}));
  EXPECT_EQ(merged.field(0).size(), 1u);
}

TEST(SuperRecordTest, MergeWithEmptyMatchingAppendsAllFields) {
  Record a(0, 0, {Value("x"), Value("y")});
  Record b(1, 1, {Value("p")});
  SuperRecord merged = SuperRecord::Merge(SuperRecord::FromRecord(a),
                                          SuperRecord::FromRecord(b), {}, 0);
  EXPECT_EQ(merged.num_fields(), 3u);
  EXPECT_EQ(merged.members(), (std::vector<uint32_t>{0, 1}));
}

TEST(SuperRecordTest, MergeIsAssociativeOnMembers) {
  Record a(0, 0, {Value("x")});
  Record b(1, 0, {Value("y")});
  Record c(2, 0, {Value("z")});
  SuperRecord ab = SuperRecord::Merge(SuperRecord::FromRecord(a),
                                      SuperRecord::FromRecord(b), {}, 0);
  SuperRecord abc = SuperRecord::Merge(ab, SuperRecord::FromRecord(c), {}, 0);
  EXPECT_EQ(abc.members(), (std::vector<uint32_t>{0, 1, 2}));
  EXPECT_EQ(abc.num_fields(), 3u);
}

TEST(FieldTest, AddValueDedupsByEquality) {
  Field f;
  EXPECT_EQ(f.AddValue({Value("a"), AttrRef{0, 0}}), 0u);
  EXPECT_EQ(f.AddValue({Value("b"), AttrRef{0, 1}}), 1u);
  EXPECT_EQ(f.AddValue({Value("a"), AttrRef{1, 5}}), 0u);  // Dedup.
  EXPECT_EQ(f.size(), 2u);
}

TEST(SuperRecordTest, ToStringIsReadable) {
  Record r(3, 0, {Value("John")});
  std::string s = SuperRecord::FromRecord(r).ToString();
  EXPECT_NE(s.find("R3"), std::string::npos);
  EXPECT_NE(s.find("John"), std::string::npos);
}

// ----------------------------------------------------------------- Dataset

TEST(DatasetTest, AddRecordAssignsSequentialIds) {
  Dataset ds;
  uint32_t s = ds.schemas().Register(Schema("S", {"a"}));
  EXPECT_EQ(ds.AddRecord(s, {Value("1")}), 0u);
  EXPECT_EQ(ds.AddRecord(s, {Value("2")}), 1u);
  EXPECT_EQ(ds.size(), 2u);
}

TEST(DatasetTest, MotivatingExampleShape) {
  Dataset ds = testing_util::MakeCustomersDataset();
  EXPECT_EQ(ds.size(), 6u);
  EXPECT_EQ(ds.schemas().size(), 3u);
  EXPECT_TRUE(ds.has_ground_truth());
  EXPECT_EQ(ds.NumEntities(), 2u);
  EXPECT_TRUE(ds.Validate().ok());
}

TEST(DatasetTest, ValidateCatchesArityMismatch) {
  Dataset ds;
  uint32_t s = ds.schemas().Register(Schema("S", {"a", "b"}));
  ds.AddRecord(s, {Value("only one")});
  EXPECT_FALSE(ds.Validate().ok());
}

TEST(DatasetTest, ValidateCatchesBadCanonicalAttr) {
  Dataset ds;
  uint32_t s = ds.schemas().Register(Schema("S", {"a"}));
  ds.AddRecord(s, {Value("x")});
  ds.canonical_attr()[AttrRef{5, 0}] = 0;
  EXPECT_FALSE(ds.Validate().ok());
}

TEST(DatasetTest, DistinctAttributesFromCanonicalMap) {
  Dataset ds;
  uint32_t s1 = ds.schemas().Register(Schema("A", {"name", "addr"}));
  uint32_t s2 = ds.schemas().Register(Schema("B", {"title"}));
  ds.canonical_attr()[AttrRef{s1, 0}] = 0;
  ds.canonical_attr()[AttrRef{s1, 1}] = 1;
  ds.canonical_attr()[AttrRef{s2, 0}] = 0;  // title == name concept.
  EXPECT_EQ(ds.NumDistinctAttributes(), 2u);
}

TEST(DatasetTest, DistinctAttributesFallbackCountsNames) {
  Dataset ds;
  ds.schemas().Register(Schema("A", {"name", "addr"}));
  ds.schemas().Register(Schema("B", {"name", "city"}));
  EXPECT_EQ(ds.NumDistinctAttributes(), 3u);  // name, addr, city.
}

}  // namespace
}  // namespace hera
