// Robustness and failure-injection tests: adversarial inputs that a
// production ER library must survive — degenerate values, extreme
// configurations, hostile datasets — plus randomized invariant checks
// over the whole pipeline.

#include <gtest/gtest.h>

#include <map>
#include <set>
#include <string>

#include "common/random.h"
#include "core/hera.h"
#include "eval/metrics.h"
#include "sim/metrics.h"
#include "simjoin/similarity_join.h"

namespace hera {
namespace {

// ------------------------------------------------ degenerate datasets

TEST(RobustnessTest, SingleCharacterValues) {
  Dataset ds;
  uint32_t s = ds.schemas().Register(Schema("S", {"a"}));
  for (const char* v : {"x", "y", "x", "z", "x"}) {
    ds.AddRecord(s, {Value(v)});
  }
  auto result = Hera(HeraOptions{}).Run(ds);
  ASSERT_TRUE(result.ok());
  // The three "x" records must land together.
  EXPECT_EQ(result->entity_of[0], result->entity_of[2]);
  EXPECT_EQ(result->entity_of[0], result->entity_of[4]);
  EXPECT_NE(result->entity_of[0], result->entity_of[1]);
}

TEST(RobustnessTest, PunctuationOnlyValues) {
  // Values that normalize to empty must not match anything.
  Dataset ds;
  uint32_t s = ds.schemas().Register(Schema("S", {"a"}));
  ds.AddRecord(s, {Value("!!!")});
  ds.AddRecord(s, {Value("...")});
  auto result = Hera(HeraOptions{}).Run(ds);
  ASSERT_TRUE(result.ok());
  EXPECT_NE(result->entity_of[0], result->entity_of[1]);
}

TEST(RobustnessTest, VeryLongValues) {
  Dataset ds;
  uint32_t s = ds.schemas().Register(Schema("S", {"text"}));
  std::string longv(10000, 'a');
  for (size_t i = 0; i < 5000; i += 2) longv[i] = 'b';
  ds.AddRecord(s, {Value(longv)});
  ds.AddRecord(s, {Value(longv)});
  ds.AddRecord(s, {Value(std::string(10000, 'c'))});
  auto result = Hera(HeraOptions{}).Run(ds);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->entity_of[0], result->entity_of[1]);
  EXPECT_NE(result->entity_of[0], result->entity_of[2]);
}

TEST(RobustnessTest, NonAsciiBytesSurvive) {
  Dataset ds;
  uint32_t s = ds.schemas().Register(Schema("S", {"name"}));
  ds.AddRecord(s, {Value("Ren\xc3\xa9 Fran\xc3\xa7ois")});
  ds.AddRecord(s, {Value("Ren\xc3\xa9 Fran\xc3\xa7ois")});
  auto result = Hera(HeraOptions{}).Run(ds);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->entity_of[0], result->entity_of[1]);
}

TEST(RobustnessTest, ExtremeNumericValues) {
  Dataset ds;
  uint32_t s = ds.schemas().Register(Schema("S", {"n"}));
  ds.AddRecord(s, {Value(1e300)});
  ds.AddRecord(s, {Value(-1e300)});
  ds.AddRecord(s, {Value(0.0)});
  ds.AddRecord(s, {Value(1e-300)});
  HeraOptions opts;
  opts.metric = "hybrid(jaccard_q2)";
  auto result = Hera(opts).Run(ds);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->entity_of.size(), 4u);
}

TEST(RobustnessTest, SchemaWithSingleAttribute) {
  Dataset ds;
  uint32_t s = ds.schemas().Register(Schema("S", {"only"}));
  ds.AddRecord(s, {Value("alpha beta gamma")});
  ds.AddRecord(s, {Value("alpha beta gamma")});
  auto result = Hera(HeraOptions{}).Run(ds);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->entity_of[0], result->entity_of[1]);
}

TEST(RobustnessTest, ManyIdenticalRecordsCollapseToOneEntity) {
  Dataset ds;
  uint32_t s = ds.schemas().Register(Schema("S", {"name", "addr"}));
  for (int i = 0; i < 64; ++i) {
    ds.AddRecord(s, {Value("Same Person"), Value("Same Street 1")});
  }
  auto result = Hera(HeraOptions{}).Run(ds);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->super_records.size(), 1u);
  EXPECT_EQ(result->super_records.begin()->second.members().size(), 64u);
  // Deduplication: the super record holds each distinct value once.
  EXPECT_EQ(result->super_records.begin()->second.NumValues(), 2u);
}

TEST(RobustnessTest, AdversarialSharedTokenSoup) {
  // Every record shares half its tokens with every other; HERA must
  // terminate and keep similarity sane (no crash, labels valid).
  Dataset ds;
  uint32_t s = ds.schemas().Register(Schema("S", {"a", "b"}));
  const char* common = "common shared token";
  for (int i = 0; i < 30; ++i) {
    ds.AddRecord(s, {Value(std::string(common) + " " + std::to_string(i * 7919)),
                     Value("unique" + std::to_string(i) + " payload")});
  }
  auto result = Hera(HeraOptions{}).Run(ds);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->entity_of.size(), 30u);
  EXPECT_LT(result->stats.iterations, 100u);
}

// ----------------------------------------------- extreme configurations

TEST(RobustnessTest, XiZeroStillTerminates) {
  Dataset ds;
  uint32_t s = ds.schemas().Register(Schema("S", {"a"}));
  for (const char* v : {"aa", "bb", "cc"}) ds.AddRecord(s, {Value(v)});
  HeraOptions opts;
  opts.xi = 0.0;
  opts.delta = 0.9;
  opts.use_prefix_filter_join = false;  // xi = 0: the oracle join.
  auto result = Hera(opts).Run(ds);
  ASSERT_TRUE(result.ok());
}

TEST(RobustnessTest, XiOneMatchesOnlyIdenticalValues) {
  Dataset ds;
  uint32_t s = ds.schemas().Register(Schema("S", {"a", "b"}));
  ds.AddRecord(s, {Value("exact"), Value("match")});
  ds.AddRecord(s, {Value("exact"), Value("match")});
  ds.AddRecord(s, {Value("exakt"), Value("match")});
  HeraOptions opts;
  opts.xi = 1.0;
  opts.delta = 0.6;
  auto result = Hera(opts).Run(ds);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->entity_of[0], result->entity_of[1]);
}

TEST(RobustnessTest, ScaledNumericMetricInRegistry) {
  auto m = MakeSimilarity("numeric_tol5");
  ASSERT_NE(m, nullptr);
  EXPECT_EQ(m->Name(), "numeric_tol5");
  EXPECT_DOUBLE_EQ(m->Compute(Value(1970.0), Value(1970.0)), 1.0);
  EXPECT_DOUBLE_EQ(m->Compute(Value(1970.0), Value(1975.0)), 0.0);
  EXPECT_NEAR(m->Compute(Value(1970.0), Value(1972.0)), 0.6, 1e-12);
  EXPECT_EQ(MakeSimilarity("numeric_tol0"), nullptr);
  EXPECT_EQ(MakeSimilarity("numeric_tol-3"), nullptr);
}

TEST(RobustnessTest, HybridWithCustomNumericMetric) {
  auto m = MakeSimilarity("hybrid(jaccard_q2,numeric_tol10)");
  ASSERT_NE(m, nullptr);
  EXPECT_EQ(m->Name(), "hybrid(jaccard_q2,numeric_tol10)");
  // Relative-difference would give 1973 vs 2023 sim ~0.975; the
  // tolerance metric correctly scores 0.
  EXPECT_DOUBLE_EQ(m->Compute(Value(1973.0), Value(2023.0)), 0.0);
  EXPECT_NEAR(m->Compute(Value(1973.0), Value(1975.0)), 0.8, 1e-12);
  EXPECT_DOUBLE_EQ(m->Compute(Value("abc"), Value("abc")), 1.0);
}

TEST(RobustnessTest, JoinExactWithToleranceMetric) {
  // The numeric sweep window must stay exact for the absolute
  // tolerance metric (a relative window would miss small values).
  auto metric = MakeSimilarity("hybrid(jaccard_q2,numeric_tol5)");
  std::vector<LabeledValue> values;
  Rng rng(61);
  for (uint32_t i = 0; i < 60; ++i) {
    values.push_back({ValueLabel{i, 0, 0},
                      Value(static_cast<double>(rng.UniformInt(-10, 10)))});
  }
  for (double xi : {0.3, 0.5, 0.8, 1.0}) {
    auto fast = PrefixFilterJoin().Join(values, *metric, xi);
    auto slow = NestedLoopJoin().Join(values, *metric, xi);
    EXPECT_EQ(fast.size(), slow.size()) << "xi=" << xi;
  }
  // And the probe/base form.
  std::vector<LabeledValue> probe(values.begin(), values.begin() + 20);
  std::vector<LabeledValue> base(values.begin() + 20, values.end());
  for (double xi : {0.3, 0.8}) {
    auto fast = PrefixFilterJoin().JoinAB(probe, base, *metric, xi);
    auto slow = NestedLoopJoin().JoinAB(probe, base, *metric, xi);
    EXPECT_EQ(fast.size(), slow.size()) << "AB xi=" << xi;
  }
}

// ------------------------------------------------- randomized invariants

TEST(RobustnessTest, RandomDatasetsInvariants) {
  Rng rng(97);
  const char* kWords[] = {"red", "blue", "green", "null", "void", "zero",
                          "one", "data"};
  for (int trial = 0; trial < 15; ++trial) {
    Dataset ds;
    size_t num_schemas = 1 + rng.Uniform(3);
    std::vector<uint32_t> sids;
    for (size_t s = 0; s < num_schemas; ++s) {
      size_t arity = 1 + rng.Uniform(4);
      std::vector<std::string> attrs;
      for (size_t a = 0; a < arity; ++a) {
        attrs.push_back("attr" + std::to_string(s) + "_" + std::to_string(a));
      }
      sids.push_back(ds.schemas().Register(Schema("S" + std::to_string(s), attrs)));
    }
    size_t n = 5 + rng.Uniform(30);
    for (size_t r = 0; r < n; ++r) {
      uint32_t sid = sids[rng.Uniform(sids.size())];
      std::vector<Value> values;
      for (size_t a = 0; a < ds.schemas().Get(sid).size(); ++a) {
        switch (rng.Uniform(4)) {
          case 0:
            values.emplace_back();  // Null.
            break;
          case 1:
            values.emplace_back(static_cast<double>(rng.Uniform(100)));
            break;
          default: {
            std::string v = kWords[rng.Uniform(8)];
            if (rng.Bernoulli(0.5)) v += " " + std::string(kWords[rng.Uniform(8)]);
            values.emplace_back(v);
          }
        }
      }
      ds.AddRecord(sid, std::move(values));
    }
    HeraOptions opts;
    opts.xi = 0.3 + 0.6 * rng.UniformDouble();
    opts.delta = 0.3 + 0.6 * rng.UniformDouble();
    auto result = Hera(opts).Run(ds);
    ASSERT_TRUE(result.ok()) << "trial " << trial;

    // Invariant 1: labels form a partition consistent with super records.
    std::map<uint32_t, std::set<uint32_t>> clusters;
    for (uint32_t r = 0; r < n; ++r) clusters[result->entity_of[r]].insert(r);
    size_t member_total = 0;
    for (const auto& [rid, sr] : result->super_records) {
      EXPECT_TRUE(clusters.count(rid)) << "trial " << trial;
      EXPECT_EQ(clusters[rid].size(), sr.members().size()) << "trial " << trial;
      member_total += sr.members().size();
    }
    EXPECT_EQ(member_total, n) << "trial " << trial;
    // Invariant 2: merge count == records - clusters.
    EXPECT_EQ(result->stats.merges, n - result->super_records.size())
        << "trial " << trial;
  }
}

}  // namespace
}  // namespace hera
