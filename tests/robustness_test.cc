// Robustness and failure-injection tests: adversarial inputs that a
// production ER library must survive — degenerate values, extreme
// configurations, hostile datasets — plus randomized invariant checks
// over the whole pipeline.

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <map>
#include <set>
#include <string>

#include "common/failpoint.h"
#include "common/random.h"
#include "common/run_guard.h"
#include "core/hera.h"
#include "core/incremental.h"
#include "data/ambiguity_generator.h"
#include "data/csv.h"
#include "data/publication_generator.h"
#include "eval/metrics.h"
#include "sim/metrics.h"
#include "simjoin/similarity_join.h"
#include "testing_util.h"

namespace hera {
namespace {

// ------------------------------------------------ degenerate datasets

TEST(RobustnessTest, SingleCharacterValues) {
  Dataset ds;
  uint32_t s = ds.schemas().Register(Schema("S", {"a"}));
  for (const char* v : {"x", "y", "x", "z", "x"}) {
    ds.AddRecord(s, {Value(v)});
  }
  auto result = Hera(HeraOptions{}).Run(ds);
  ASSERT_TRUE(result.ok());
  // The three "x" records must land together.
  EXPECT_EQ(result->entity_of[0], result->entity_of[2]);
  EXPECT_EQ(result->entity_of[0], result->entity_of[4]);
  EXPECT_NE(result->entity_of[0], result->entity_of[1]);
}

TEST(RobustnessTest, PunctuationOnlyValues) {
  // Values that normalize to empty must not match anything.
  Dataset ds;
  uint32_t s = ds.schemas().Register(Schema("S", {"a"}));
  ds.AddRecord(s, {Value("!!!")});
  ds.AddRecord(s, {Value("...")});
  auto result = Hera(HeraOptions{}).Run(ds);
  ASSERT_TRUE(result.ok());
  EXPECT_NE(result->entity_of[0], result->entity_of[1]);
}

TEST(RobustnessTest, VeryLongValues) {
  Dataset ds;
  uint32_t s = ds.schemas().Register(Schema("S", {"text"}));
  std::string longv(10000, 'a');
  for (size_t i = 0; i < 5000; i += 2) longv[i] = 'b';
  ds.AddRecord(s, {Value(longv)});
  ds.AddRecord(s, {Value(longv)});
  ds.AddRecord(s, {Value(std::string(10000, 'c'))});
  auto result = Hera(HeraOptions{}).Run(ds);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->entity_of[0], result->entity_of[1]);
  EXPECT_NE(result->entity_of[0], result->entity_of[2]);
}

TEST(RobustnessTest, NonAsciiBytesSurvive) {
  Dataset ds;
  uint32_t s = ds.schemas().Register(Schema("S", {"name"}));
  ds.AddRecord(s, {Value("Ren\xc3\xa9 Fran\xc3\xa7ois")});
  ds.AddRecord(s, {Value("Ren\xc3\xa9 Fran\xc3\xa7ois")});
  auto result = Hera(HeraOptions{}).Run(ds);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->entity_of[0], result->entity_of[1]);
}

TEST(RobustnessTest, ExtremeNumericValues) {
  Dataset ds;
  uint32_t s = ds.schemas().Register(Schema("S", {"n"}));
  ds.AddRecord(s, {Value(1e300)});
  ds.AddRecord(s, {Value(-1e300)});
  ds.AddRecord(s, {Value(0.0)});
  ds.AddRecord(s, {Value(1e-300)});
  HeraOptions opts;
  opts.metric = "hybrid(jaccard_q2)";
  auto result = Hera(opts).Run(ds);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->entity_of.size(), 4u);
}

TEST(RobustnessTest, SchemaWithSingleAttribute) {
  Dataset ds;
  uint32_t s = ds.schemas().Register(Schema("S", {"only"}));
  ds.AddRecord(s, {Value("alpha beta gamma")});
  ds.AddRecord(s, {Value("alpha beta gamma")});
  auto result = Hera(HeraOptions{}).Run(ds);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->entity_of[0], result->entity_of[1]);
}

TEST(RobustnessTest, ManyIdenticalRecordsCollapseToOneEntity) {
  Dataset ds;
  uint32_t s = ds.schemas().Register(Schema("S", {"name", "addr"}));
  for (int i = 0; i < 64; ++i) {
    ds.AddRecord(s, {Value("Same Person"), Value("Same Street 1")});
  }
  auto result = Hera(HeraOptions{}).Run(ds);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->super_records.size(), 1u);
  EXPECT_EQ(result->super_records.begin()->second.members().size(), 64u);
  // Deduplication: the super record holds each distinct value once.
  EXPECT_EQ(result->super_records.begin()->second.NumValues(), 2u);
}

TEST(RobustnessTest, AdversarialSharedTokenSoup) {
  // Every record shares half its tokens with every other; HERA must
  // terminate and keep similarity sane (no crash, labels valid).
  Dataset ds;
  uint32_t s = ds.schemas().Register(Schema("S", {"a", "b"}));
  const char* common = "common shared token";
  for (int i = 0; i < 30; ++i) {
    ds.AddRecord(s, {Value(std::string(common) + " " + std::to_string(i * 7919)),
                     Value("unique" + std::to_string(i) + " payload")});
  }
  auto result = Hera(HeraOptions{}).Run(ds);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->entity_of.size(), 30u);
  EXPECT_LT(result->stats.iterations, 100u);
}

// ----------------------------------------------- extreme configurations

TEST(RobustnessTest, XiZeroStillTerminates) {
  Dataset ds;
  uint32_t s = ds.schemas().Register(Schema("S", {"a"}));
  for (const char* v : {"aa", "bb", "cc"}) ds.AddRecord(s, {Value(v)});
  HeraOptions opts;
  opts.xi = 0.0;
  opts.delta = 0.9;
  opts.use_prefix_filter_join = false;  // xi = 0: the oracle join.
  auto result = Hera(opts).Run(ds);
  ASSERT_TRUE(result.ok());
}

TEST(RobustnessTest, XiOneMatchesOnlyIdenticalValues) {
  Dataset ds;
  uint32_t s = ds.schemas().Register(Schema("S", {"a", "b"}));
  ds.AddRecord(s, {Value("exact"), Value("match")});
  ds.AddRecord(s, {Value("exact"), Value("match")});
  ds.AddRecord(s, {Value("exakt"), Value("match")});
  HeraOptions opts;
  opts.xi = 1.0;
  opts.delta = 0.6;
  auto result = Hera(opts).Run(ds);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->entity_of[0], result->entity_of[1]);
}

TEST(RobustnessTest, ScaledNumericMetricInRegistry) {
  auto m = MakeSimilarity("numeric_tol5");
  ASSERT_NE(m, nullptr);
  EXPECT_EQ(m->Name(), "numeric_tol5");
  EXPECT_DOUBLE_EQ(m->Compute(Value(1970.0), Value(1970.0)), 1.0);
  EXPECT_DOUBLE_EQ(m->Compute(Value(1970.0), Value(1975.0)), 0.0);
  EXPECT_NEAR(m->Compute(Value(1970.0), Value(1972.0)), 0.6, 1e-12);
  EXPECT_EQ(MakeSimilarity("numeric_tol0"), nullptr);
  EXPECT_EQ(MakeSimilarity("numeric_tol-3"), nullptr);
}

TEST(RobustnessTest, HybridWithCustomNumericMetric) {
  auto m = MakeSimilarity("hybrid(jaccard_q2,numeric_tol10)");
  ASSERT_NE(m, nullptr);
  EXPECT_EQ(m->Name(), "hybrid(jaccard_q2,numeric_tol10)");
  // Relative-difference would give 1973 vs 2023 sim ~0.975; the
  // tolerance metric correctly scores 0.
  EXPECT_DOUBLE_EQ(m->Compute(Value(1973.0), Value(2023.0)), 0.0);
  EXPECT_NEAR(m->Compute(Value(1973.0), Value(1975.0)), 0.8, 1e-12);
  EXPECT_DOUBLE_EQ(m->Compute(Value("abc"), Value("abc")), 1.0);
}

TEST(RobustnessTest, JoinExactWithToleranceMetric) {
  // The numeric sweep window must stay exact for the absolute
  // tolerance metric (a relative window would miss small values).
  auto metric = MakeSimilarity("hybrid(jaccard_q2,numeric_tol5)");
  std::vector<LabeledValue> values;
  Rng rng(61);
  for (uint32_t i = 0; i < 60; ++i) {
    values.push_back({ValueLabel{i, 0, 0},
                      Value(static_cast<double>(rng.UniformInt(-10, 10)))});
  }
  for (double xi : {0.3, 0.5, 0.8, 1.0}) {
    auto fast = PrefixFilterJoin().Join(values, *metric, xi);
    auto slow = NestedLoopJoin().Join(values, *metric, xi);
    EXPECT_EQ(fast.size(), slow.size()) << "xi=" << xi;
  }
  // And the probe/base form.
  std::vector<LabeledValue> probe(values.begin(), values.begin() + 20);
  std::vector<LabeledValue> base(values.begin() + 20, values.end());
  for (double xi : {0.3, 0.8}) {
    auto fast = PrefixFilterJoin().JoinAB(probe, base, *metric, xi);
    auto slow = NestedLoopJoin().JoinAB(probe, base, *metric, xi);
    EXPECT_EQ(fast.size(), slow.size()) << "AB xi=" << xi;
  }
}

// ------------------------------------------------- randomized invariants

TEST(RobustnessTest, RandomDatasetsInvariants) {
  Rng rng(97);
  const char* kWords[] = {"red", "blue", "green", "null", "void", "zero",
                          "one", "data"};
  for (int trial = 0; trial < 15; ++trial) {
    Dataset ds;
    size_t num_schemas = 1 + rng.Uniform(3);
    std::vector<uint32_t> sids;
    for (size_t s = 0; s < num_schemas; ++s) {
      size_t arity = 1 + rng.Uniform(4);
      std::vector<std::string> attrs;
      for (size_t a = 0; a < arity; ++a) {
        attrs.push_back("attr" + std::to_string(s) + "_" + std::to_string(a));
      }
      sids.push_back(ds.schemas().Register(Schema("S" + std::to_string(s), attrs)));
    }
    size_t n = 5 + rng.Uniform(30);
    for (size_t r = 0; r < n; ++r) {
      uint32_t sid = sids[rng.Uniform(sids.size())];
      std::vector<Value> values;
      for (size_t a = 0; a < ds.schemas().Get(sid).size(); ++a) {
        switch (rng.Uniform(4)) {
          case 0:
            values.emplace_back();  // Null.
            break;
          case 1:
            values.emplace_back(static_cast<double>(rng.Uniform(100)));
            break;
          default: {
            std::string v = kWords[rng.Uniform(8)];
            if (rng.Bernoulli(0.5)) v += " " + std::string(kWords[rng.Uniform(8)]);
            values.emplace_back(v);
          }
        }
      }
      ds.AddRecord(sid, std::move(values));
    }
    HeraOptions opts;
    opts.xi = 0.3 + 0.6 * rng.UniformDouble();
    opts.delta = 0.3 + 0.6 * rng.UniformDouble();
    auto result = Hera(opts).Run(ds);
    ASSERT_TRUE(result.ok()) << "trial " << trial;

    // Invariant 1: labels form a partition consistent with super records.
    std::map<uint32_t, std::set<uint32_t>> clusters;
    for (uint32_t r = 0; r < n; ++r) clusters[result->entity_of[r]].insert(r);
    size_t member_total = 0;
    for (const auto& [rid, sr] : result->super_records) {
      EXPECT_TRUE(clusters.count(rid)) << "trial " << trial;
      EXPECT_EQ(clusters[rid].size(), sr.members().size()) << "trial " << trial;
      member_total += sr.members().size();
    }
    EXPECT_EQ(member_total, n) << "trial " << trial;
    // Invariant 2: merge count == records - clusters.
    EXPECT_EQ(result->stats.merges, n - result->super_records.size())
        << "trial " << trial;
  }
}

// -------------------------------------------------- option validation

TEST(GovernanceTest, InvalidOptionsRejectedUpFront) {
  Dataset ds = testing_util::MakeCustomersDataset();
  auto expect_invalid = [&](HeraOptions opts, const char* what) {
    auto r = Hera(opts).Run(ds);
    ASSERT_FALSE(r.ok()) << what;
    EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument) << what;
    auto inc = IncrementalHera::Create(opts, ds.schemas());
    ASSERT_FALSE(inc.ok()) << what;
    EXPECT_EQ(inc.status().code(), StatusCode::kInvalidArgument) << what;
  };
  HeraOptions bad;
  bad.xi = -0.1;
  expect_invalid(bad, "xi < 0");
  bad = HeraOptions{};
  bad.xi = 1.5;
  expect_invalid(bad, "xi > 1");
  bad = HeraOptions{};
  bad.delta = 2.0;
  expect_invalid(bad, "delta > 1");
  bad = HeraOptions{};
  bad.vote_prior_p = 0.4;  // Must exceed 0.5 to carry any signal.
  expect_invalid(bad, "vote_prior_p <= 0.5");
  bad = HeraOptions{};
  bad.vote_prior_p = 1.5;
  expect_invalid(bad, "vote_prior_p > 1");
  bad = HeraOptions{};
  bad.vote_rho = 0.0;
  expect_invalid(bad, "vote_rho == 0");
  bad = HeraOptions{};
  bad.max_iterations = 0;
  expect_invalid(bad, "max_iterations == 0");
  bad = HeraOptions{};
  bad.metric = "no_such_metric";
  expect_invalid(bad, "unknown metric");
}

// ------------------------------------------- deadlines and cancellation

// Asserts entity_of / super_records describe one consistent partition.
void ExpectValidLabeling(const HeraResult& result, size_t n) {
  ASSERT_EQ(result.entity_of.size(), n);
  std::map<uint32_t, std::set<uint32_t>> clusters;
  for (uint32_t r = 0; r < n; ++r) {
    EXPECT_EQ(result.entity_of[result.entity_of[r]], result.entity_of[r]);
    clusters[result.entity_of[r]].insert(r);
  }
  ASSERT_EQ(clusters.size(), result.super_records.size());
  size_t members = 0;
  for (const auto& [rid, sr] : result.super_records) {
    ASSERT_TRUE(clusters.count(rid)) << "super record " << rid;
    EXPECT_EQ(clusters[rid].size(), sr.members().size());
    members += sr.members().size();
  }
  EXPECT_EQ(members, n);
}

Dataset MakePublications() {
  PublicationGeneratorConfig cfg;
  cfg.num_records = 120;
  cfg.num_entities = 30;
  cfg.seed = 7;
  return GeneratePublicationDataset(cfg);
}

TEST(GovernanceTest, ZeroDeadlineReturnsValidPartialLabeling) {
  Dataset ds = MakePublications();
  HeraOptions opts;
  opts.guard.WithTimeoutMs(0.0);  // Expired the moment the run arms it.
  auto result = Hera(opts).Run(ds);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result->stats.outcome, RunOutcome::kTruncatedDeadline);
  ExpectValidLabeling(*result, ds.size());
}

TEST(GovernanceTest, PreCancelledTokenTruncates) {
  Dataset ds = testing_util::MakeCustomersDataset();
  CancellationToken token = CancellationToken::Make();
  token.RequestCancel();
  HeraOptions opts;
  opts.guard.WithCancellation(token);
  auto result = Hera(opts).Run(ds);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result->stats.outcome, RunOutcome::kTruncatedCancelled);
  ExpectValidLabeling(*result, ds.size());
}

TEST(GovernanceTest, GenerousGuardMatchesUnguardedRun) {
  // A guard whose limits cannot bind must not change the result.
  Dataset ds = testing_util::MakeCustomersDataset();
  auto plain = Hera(HeraOptions{}).Run(ds);
  ASSERT_TRUE(plain.ok());
  HeraOptions opts;
  opts.guard.WithTimeoutMs(1e9)
      .WithCancellation(CancellationToken::Make())
      .WithMaxIndexPairs(1u << 30)
      .WithMaxPostingList(1u << 30)
      .WithMaxCandidatesPerIteration(1u << 30);
  auto guarded = Hera(opts).Run(ds);
  ASSERT_TRUE(guarded.ok());
  EXPECT_EQ(guarded->stats.outcome, RunOutcome::kCompleted);
  EXPECT_EQ(guarded->entity_of, plain->entity_of);
  EXPECT_EQ(guarded->stats.merges, plain->stats.merges);
  EXPECT_EQ(guarded->stats.index_size, plain->stats.index_size);
}

// ------------------------------------------------------ resource ceilings

TEST(GovernanceTest, IndexPairCeilingDegradesGracefully) {
  Dataset ds = testing_util::MakeCustomersDataset();
  HeraOptions opts;
  opts.guard.WithMaxIndexPairs(5);
  auto result = Hera(opts).Run(ds);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result->stats.outcome, RunOutcome::kDegraded);
  EXPECT_GT(result->stats.shed_index_pairs, 0u);
  EXPECT_LE(result->stats.index_size, 5u);
  ExpectValidLabeling(*result, ds.size());
}

TEST(GovernanceTest, PostingListCeilingDegradesGracefully) {
  // Many records sharing one hot token blow up the per-token posting
  // lists; the ceiling sheds them instead of going quadratic.
  Dataset ds;
  uint32_t s = ds.schemas().Register(Schema("S", {"a"}));
  for (int i = 0; i < 40; ++i) {
    ds.AddRecord(s, {Value("hot common token " + std::to_string(i))});
  }
  HeraOptions opts;
  opts.guard.WithMaxPostingList(4);
  auto result = Hera(opts).Run(ds);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result->stats.outcome, RunOutcome::kDegraded);
  EXPECT_GT(result->stats.shed_posting_entries, 0u);
  ExpectValidLabeling(*result, ds.size());
}

TEST(GovernanceTest, CandidateCapDefersWithoutLosingMerges) {
  Dataset ds = testing_util::MakeCustomersDataset();
  auto plain = Hera(HeraOptions{}).Run(ds);
  ASSERT_TRUE(plain.ok());
  HeraOptions opts;
  opts.guard.WithMaxCandidatesPerIteration(1);
  auto capped = Hera(opts).Run(ds);
  ASSERT_TRUE(capped.ok()) << capped.status();
  // Deferral, not loss: the capped run reaches the same fixpoint.
  EXPECT_EQ(capped->stats.outcome, RunOutcome::kCompleted);
  EXPECT_GT(capped->stats.deferred_candidate_groups, 0u);
  EXPECT_GT(capped->stats.iterations, plain->stats.iterations);
  EXPECT_TRUE(testing_util::SamePartition(capped->entity_of, plain->entity_of));
}

TEST(GovernanceTest, IterationCapSurfacedInOutcome) {
  Dataset ds = testing_util::MakeCustomersDataset();
  HeraOptions opts;
  opts.max_iterations = 1;  // Fixpoint confirmation needs >= 2 passes.
  auto result = Hera(opts).Run(ds);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result->stats.outcome, RunOutcome::kIterationCap);
  ExpectValidLabeling(*result, ds.size());
}

TEST(GovernanceTest, RunOutcomeNamesAreStable) {
  EXPECT_STREQ(RunOutcomeToString(RunOutcome::kCompleted), "completed");
  EXPECT_STREQ(RunOutcomeToString(RunOutcome::kDegraded), "degraded");
  EXPECT_STREQ(RunOutcomeToString(RunOutcome::kIterationCap), "iteration_cap");
  EXPECT_STREQ(RunOutcomeToString(RunOutcome::kTruncatedBudget),
               "truncated_budget");
  EXPECT_STREQ(RunOutcomeToString(RunOutcome::kTruncatedDeadline),
               "truncated_deadline");
  EXPECT_STREQ(RunOutcomeToString(RunOutcome::kTruncatedCancelled),
               "truncated_cancelled");
}

// ------------------------------------------------- progressive execution

// The publication corpora resolve almost entirely through the bound
// shortcuts (a handful of KM verifications end to end), so they cannot
// make a verification budget bind. The ambiguity corpus is built for
// exactly that: every merge costs a verification and decoys add
// verification-shaped work that never pays off.
Dataset MakeAmbiguous(size_t decoys = 20) {
  AmbiguityGeneratorConfig cfg;
  cfg.num_entities = 30;
  cfg.num_decoys = decoys;
  cfg.seed = 7;
  return GenerateAmbiguousDataset(cfg);
}

// Ungoverned progressive is a no-op by construction: the frontier only
// engages when a budget, deadline, or token could cut the run, so with
// none of those the pass order stays canonical and labels AND the merge
// sequence are byte-identical to the default — at every thread count
// and on both index backends.
TEST(ProgressiveTest, UngovernedRunIsByteIdenticalToDefault) {
  Dataset ds = MakePublications();
  for (IndexBackend backend : {IndexBackend::kOrdered, IndexBackend::kFlat}) {
    for (size_t threads : {size_t{0}, size_t{4}, size_t{8}}) {
      HeraOptions base;
      base.index_backend = backend;
      base.num_threads = threads;
      auto plain = Hera(base).Run(ds);
      ASSERT_TRUE(plain.ok()) << plain.status();

      HeraOptions popts = base;
      popts.progressive = true;
      auto prog = Hera(popts).Run(ds);
      ASSERT_TRUE(prog.ok()) << prog.status();
      EXPECT_EQ(prog->stats.outcome, RunOutcome::kCompleted);
      EXPECT_EQ(prog->entity_of, plain->entity_of)
          << "backend=" << (backend == IndexBackend::kFlat ? "flat" : "ordered")
          << " threads=" << threads;
      EXPECT_EQ(prog->stats.merge_sequence, plain->stats.merge_sequence)
          << "backend=" << (backend == IndexBackend::kFlat ? "flat" : "ordered")
          << " threads=" << threads;
    }
  }
}

TEST(ProgressiveTest, VerificationBudgetTruncatesWithValidLabels) {
  Dataset ds = MakeAmbiguous();
  auto plain = Hera(HeraOptions{}).Run(ds);
  ASSERT_TRUE(plain.ok());
  ASSERT_GT(plain->stats.candidates, 5u) << "dataset needs no verification";

  HeraOptions opts;
  opts.progressive = true;
  opts.guard.WithMaxVerifications(5);
  auto cut = Hera(opts).Run(ds);
  ASSERT_TRUE(cut.ok()) << cut.status();
  EXPECT_EQ(cut->stats.outcome, RunOutcome::kTruncatedBudget);
  // The budget is spent exactly, never overshot.
  EXPECT_EQ(cut->stats.candidates, 5u);
  EXPECT_GT(cut->stats.frontier_groups, 0u);
  EXPECT_GT(cut->stats.budget_deferred_groups, 0u);
  ExpectValidLabeling(*cut, ds.size());
}

// Blind shedding (the non-progressive baseline of the bench): the same
// budget under canonical order also stops exactly at the budget with a
// valid partial labeling — only the *choice* of shed work differs.
TEST(ProgressiveTest, BlindShedBudgetAlsoTruncatesExactly) {
  Dataset ds = MakeAmbiguous();
  HeraOptions opts;
  opts.guard.WithMaxVerifications(5);
  auto cut = Hera(opts).Run(ds);
  ASSERT_TRUE(cut.ok()) << cut.status();
  EXPECT_EQ(cut->stats.outcome, RunOutcome::kTruncatedBudget);
  EXPECT_EQ(cut->stats.candidates, 5u);
  EXPECT_GT(cut->stats.budget_deferred_groups, 0u);
  // No frontier ordering happened in the blind baseline.
  EXPECT_EQ(cut->stats.frontier_groups, 0u);
  ExpectValidLabeling(*cut, ds.size());
}

// The point of the frontier: at the same partial budget, spending it
// best-first (high upper bounds before decoys) recovers strictly more
// of the ground truth than spending it in canonical order, because the
// decoys sit at low record ids where a blind budget burns first.
TEST(ProgressiveTest, BestFirstBeatsBlindShedAtHalfBudget) {
  Dataset ds = MakeAmbiguous(/*decoys=*/30);
  HeraOptions gauge;
  gauge.progressive = true;
  gauge.guard.WithMaxVerifications(1u << 30);
  auto full = Hera(gauge).Run(ds);
  ASSERT_TRUE(full.ok()) << full.status();
  ASSERT_EQ(full->stats.outcome, RunOutcome::kCompleted);
  const size_t budget = full->stats.candidates / 2;
  ASSERT_GT(budget, 0u);

  double recall[2];
  for (bool progressive : {false, true}) {
    HeraOptions opts;
    opts.progressive = progressive;
    opts.guard.WithMaxVerifications(budget);
    auto cut = Hera(opts).Run(ds);
    ASSERT_TRUE(cut.ok()) << cut.status();
    EXPECT_EQ(cut->stats.outcome, RunOutcome::kTruncatedBudget);
    EXPECT_EQ(cut->stats.candidates, budget);
    recall[progressive] = EvaluatePairs(cut->entity_of, ds.entity_of()).recall;
  }
  EXPECT_GT(recall[1], recall[0])
      << "best-first recall=" << recall[1] << " blind recall=" << recall[0];
}

// A budget generous enough never to bind must not change the fixpoint:
// the frontier reorders verification, but deferral-confluence carries
// the run to the same partition (and labels are canonical min-rids).
TEST(ProgressiveTest, NonBindingBudgetReachesDefaultFixpoint) {
  Dataset ds = MakeAmbiguous();
  auto plain = Hera(HeraOptions{}).Run(ds);
  ASSERT_TRUE(plain.ok());
  HeraOptions opts;
  opts.progressive = true;
  opts.guard.WithMaxVerifications(1u << 30);
  auto prog = Hera(opts).Run(ds);
  ASSERT_TRUE(prog.ok()) << prog.status();
  EXPECT_EQ(prog->stats.outcome, RunOutcome::kCompleted);
  EXPECT_EQ(prog->stats.budget_deferred_groups, 0u);
  EXPECT_EQ(prog->entity_of, plain->entity_of);
}

// A small frontier capacity only bounds how much of the pass is
// reordered; with the budget inside the reordered head, the spent
// budget and outcome are unchanged.
TEST(ProgressiveTest, FrontierCapacityCapsOrderingNotCorrectness) {
  Dataset ds = MakeAmbiguous();
  HeraOptions opts;
  opts.progressive = true;
  opts.frontier_capacity = 2;
  opts.guard.WithMaxVerifications(2);
  auto cut = Hera(opts).Run(ds);
  ASSERT_TRUE(cut.ok()) << cut.status();
  EXPECT_EQ(cut->stats.outcome, RunOutcome::kTruncatedBudget);
  EXPECT_EQ(cut->stats.candidates, 2u);
  ExpectValidLabeling(*cut, ds.size());
}

TEST(ProgressiveTest, BudgetObserverFiresExactlyOnceWithReason) {
  Dataset ds = MakeAmbiguous();
  int fired = 0;
  std::string reason;
  HeraOptions opts;
  opts.progressive = true;
  opts.guard.WithMaxVerifications(3).WithBudgetObserver(
      [&](const char* r) {
        ++fired;
        reason = r;
      });
  auto cut = Hera(opts).Run(ds);
  ASSERT_TRUE(cut.ok()) << cut.status();
  ASSERT_EQ(cut->stats.outcome, RunOutcome::kTruncatedBudget);
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(reason, "budget");
}

// A cancellation mid-run under progressive drains through the same
// orderly frontier path: the observer reports "cancelled" and the
// partial labeling stays valid.
TEST(ProgressiveTest, CancellationDrainsFrontierWithObserver) {
  Dataset ds = MakePublications();
  CancellationToken token = CancellationToken::Make();
  token.RequestCancel();
  int fired = 0;
  std::string reason;
  HeraOptions opts;
  opts.progressive = true;
  opts.guard.WithCancellation(token).WithBudgetObserver([&](const char* r) {
    ++fired;
    reason = r;
  });
  auto cut = Hera(opts).Run(ds);
  ASSERT_TRUE(cut.ok()) << cut.status();
  EXPECT_EQ(cut->stats.outcome, RunOutcome::kTruncatedCancelled);
  ExpectValidLabeling(*cut, ds.size());
  if (fired > 0) {  // Fires only if a pass reached its verify stage.
    EXPECT_EQ(fired, 1);
    EXPECT_EQ(reason, "cancelled");
  }
}

#ifndef HERA_DISABLE_OBS

TEST(ProgressiveTest, FrontierCountersSurfaceInReport) {
  Dataset ds = MakeAmbiguous();
  HeraOptions opts;
  opts.progressive = true;
  opts.collect_report = true;
  opts.guard.WithMaxVerifications(5);
  auto cut = Hera(opts).Run(ds);
  ASSERT_TRUE(cut.ok()) << cut.status();
  ASSERT_TRUE(cut->report.collected);
  const auto& counters = cut->report.counters;
  ASSERT_TRUE(counters.count("quality.frontier_groups"));
  ASSERT_TRUE(counters.count("quality.frontier_verified"));
  ASSERT_TRUE(counters.count("quality.frontier_deferred"));
  EXPECT_EQ(counters.at("quality.frontier_groups"),
            cut->stats.frontier_groups);
  EXPECT_EQ(counters.at("quality.frontier_verified"), cut->stats.candidates);
  EXPECT_EQ(counters.at("quality.frontier_deferred"),
            cut->stats.budget_deferred_groups);
}

#endif  // HERA_DISABLE_OBS

// --------------------------------------------------------- fault injection

// These need the HERA_FAILPOINT sites compiled in (HERA_FAILPOINTS=ON,
// the default); with -DHERA_FAILPOINTS=OFF nothing can trip.
#ifndef HERA_DISABLE_FAILPOINTS

TEST(GovernanceTest, FailpointSweepEverySiteSurfacesCleanError) {
  Dataset ds = MakePublications();
  std::string path = std::string(::testing::TempDir()) + "/failpoint_sweep.hera";
  ASSERT_TRUE(WriteDataset(ds, path).ok());

  // Unfaulted control run; candidates > 0 proves the KM verification
  // branch (and with it the verify.km site) is on this dataset's path.
  failpoint::DisarmAll();
  {
    auto loaded = ReadDataset(path);
    ASSERT_TRUE(loaded.ok()) << loaded.status();
    auto r = Hera(HeraOptions{}).Run(*loaded);
    ASSERT_TRUE(r.ok()) << r.status();
    ASSERT_GT(r->stats.candidates, 0u);
    ASSERT_GT(r->stats.merges, 0u);
  }

  for (const std::string& site : failpoint::KnownSites()) {
    SCOPED_TRACE(site);
    failpoint::DisarmAll();
    // Checkpointing is on for every site so the persist.* sites are on
    // the run's path; each site gets a fresh directory.
    HeraOptions opts;
    opts.checkpoint_dir =
        std::string(::testing::TempDir()) + "/sweep_ck_" + site;
    opts.checkpoint_every = 1;
    std::filesystem::remove_all(opts.checkpoint_dir);
    if (site == "persist.recover") {
      // The recover site only runs on Resume; seed the directory with a
      // clean checkpointed run first.
      auto seeded = ReadDataset(path);
      ASSERT_TRUE(seeded.ok()) << seeded.status();
      ASSERT_TRUE(Hera(opts).Run(*seeded).ok());
    }
    failpoint::Arm(site, Status::Internal("injected at " + site), /*skip=*/0,
                   /*trips=*/-1);
    bool failed = false;
    auto loaded = ReadDataset(path);
    if (!loaded.ok()) {
      failed = true;
      EXPECT_EQ(loaded.status().code(), StatusCode::kInternal);
    } else {
      auto r = site == "persist.recover" ? Hera(opts).Resume(*loaded)
                                         : Hera(opts).Run(*loaded);
      failed = !r.ok();
      if (!r.ok()) {
        EXPECT_EQ(r.status().code(), StatusCode::kInternal);
        EXPECT_NE(r.status().message().find(site), std::string::npos)
            << r.status();
      }
    }
    EXPECT_TRUE(failed) << "site never tripped";
    EXPECT_GE(failpoint::HitCount(site), 1u);
    failpoint::DisarmAll();
    std::filesystem::remove_all(opts.checkpoint_dir);
  }

  failpoint::DisarmAll();
  auto loaded = ReadDataset(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  EXPECT_TRUE(Hera(HeraOptions{}).Run(*loaded).ok());
  std::remove(path.c_str());
}

TEST(GovernanceTest, SkipAndTripsControlWhichHitFails) {
  Dataset ds = testing_util::MakeCustomersDataset();
  // The 4 merges of the motivating example: fail only the 3rd.
  failpoint::Arm("engine.merge", Status::Internal("third merge"), /*skip=*/2,
                 /*trips=*/1);
  auto r1 = Hera(HeraOptions{}).Run(ds);
  EXPECT_FALSE(r1.ok());
  // The trip budget is spent; the same armed site now passes.
  auto r2 = Hera(HeraOptions{}).Run(ds);
  EXPECT_TRUE(r2.ok()) << r2.status();
  failpoint::DisarmAll();
}

TEST(GovernanceTest, IncrementalResumesAfterInjectedFailure) {
  Dataset ds = testing_util::MakeCustomersDataset();
  auto batch = Hera(HeraOptions{}).Run(ds);
  ASSERT_TRUE(batch.ok());

  auto inc_or = IncrementalHera::Create(HeraOptions{}, ds.schemas());
  ASSERT_TRUE(inc_or.ok());
  IncrementalHera& inc = **inc_or;
  for (const Record& r : ds.records()) {
    ASSERT_TRUE(inc.AddRecord(r.schema_id(), r.values()).ok());
  }
  failpoint::Arm("engine.merge", Status::Internal("mid-resolve crash"));
  auto failed = inc.Resolve();
  ASSERT_FALSE(failed.ok());
  failpoint::DisarmAll();

  // The engine survived consistent; a later Resolve picks the work up
  // with nothing new pending and reaches the batch fixpoint.
  auto resumed = inc.Resolve();
  ASSERT_TRUE(resumed.ok()) << resumed.status();
  EXPECT_TRUE(testing_util::SamePartition(inc.Labels(), batch->entity_of));
}

#endif  // HERA_DISABLE_FAILPOINTS

}  // namespace
}  // namespace hera
