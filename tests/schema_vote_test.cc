// Tests for src/schema: Theorem 2 error bound and the majority-vote
// schema matching decisions.

#include <gtest/gtest.h>

#include <cmath>

#include "schema/majority_vote.h"

namespace hera {
namespace {

TEST(ErrorBoundTest, PaperExampleValue) {
  // Paper: p = 0.8, n = 10 -> UP_error = 0.57 (2 decimals).
  double up = SchemaMatchingPredictor::ErrorUpperBound(10, 0.8);
  EXPECT_NEAR(up, std::exp(-(10.0 / 1.6) * 0.09), 1e-12);
  EXPECT_NEAR(up, 0.57, 0.005);
}

TEST(ErrorBoundTest, DecreasesWithN) {
  double prev = 1.0;
  for (size_t n : {1, 2, 5, 10, 20, 50, 100}) {
    double up = SchemaMatchingPredictor::ErrorUpperBound(n, 0.8);
    EXPECT_LT(up, prev);
    prev = up;
  }
}

TEST(ErrorBoundTest, ZeroTrialsGiveVacuousBound) {
  EXPECT_DOUBLE_EQ(SchemaMatchingPredictor::ErrorUpperBound(0, 0.8), 1.0);
}

TEST(ErrorBoundTest, HigherAccuracyTightensBound) {
  EXPECT_LT(SchemaMatchingPredictor::ErrorUpperBound(10, 0.9),
            SchemaMatchingPredictor::ErrorUpperBound(10, 0.7));
}

TEST(MajorityVoteTest, NoDecisionWithoutEnoughVotes) {
  SchemaMatchingPredictor pred(0.8, 0.6);
  AttrRef a{0, 0}, b{1, 2};
  // Paper example: at n = 10, UP = 0.57 < 0.6 -> decided. At n = 9,
  // UP = 0.60.2... -> not decided.
  for (int i = 0; i < 9; ++i) pred.AddPrediction(a, b);
  EXPECT_FALSE(pred.IsDecided(a, b));
  pred.AddPrediction(a, b);
  EXPECT_TRUE(pred.IsDecided(a, b));
}

TEST(MajorityVoteTest, ModalPartnerWins) {
  SchemaMatchingPredictor pred(0.8, 0.9);  // Loose rho: decide fast.
  AttrRef a{0, 0}, b{1, 0}, c{1, 1};
  for (int i = 0; i < 5; ++i) pred.AddPrediction(a, b);
  for (int i = 0; i < 2; ++i) pred.AddPrediction(a, c);
  EXPECT_TRUE(pred.IsDecided(a, b));
  EXPECT_FALSE(pred.IsDecided(a, c));
  auto partner = pred.DecidedPartner(a, 1);
  ASSERT_TRUE(partner.has_value());
  EXPECT_TRUE(*partner == b);
}

TEST(MajorityVoteTest, MutualityRequired) {
  SchemaMatchingPredictor pred(0.8, 0.9);
  AttrRef a0{0, 0}, a1{0, 1}, b{1, 0};
  // b's votes are split: 5 for a0 and 6 for a1 -> b's modal partner is
  // a1, so (a0, b) must not be decided even though a0 votes only b.
  for (int i = 0; i < 5; ++i) pred.AddPrediction(a0, b);
  for (int i = 0; i < 6; ++i) pred.AddPrediction(a1, b);
  EXPECT_FALSE(pred.IsDecided(a0, b));
  EXPECT_TRUE(pred.IsDecided(a1, b));
}

TEST(MajorityVoteTest, SameSchemaPredictionsIgnored) {
  SchemaMatchingPredictor pred(0.8, 0.99);
  AttrRef a{0, 0}, b{0, 1};
  for (int i = 0; i < 50; ++i) pred.AddPrediction(a, b);
  EXPECT_EQ(pred.num_predictions(), 0u);
  EXPECT_FALSE(pred.IsDecided(a, b));
}

TEST(MajorityVoteTest, DecidedMatchingsListsEachOnce) {
  SchemaMatchingPredictor pred(0.8, 0.9);
  AttrRef a{0, 0}, b{1, 0}, c{0, 1}, d{2, 3};
  for (int i = 0; i < 8; ++i) pred.AddPrediction(a, b);
  for (int i = 0; i < 8; ++i) pred.AddPrediction(c, d);
  auto decided = pred.DecidedMatchings();
  EXPECT_EQ(decided.size(), 2u);
}

TEST(MajorityVoteTest, PerSchemaIndependence) {
  SchemaMatchingPredictor pred(0.8, 0.9);
  AttrRef a{0, 0}, b{1, 0}, c{2, 0};
  for (int i = 0; i < 8; ++i) pred.AddPrediction(a, b);
  // a has no votes w.r.t. schema 2.
  EXPECT_TRUE(pred.IsDecided(a, b));
  EXPECT_FALSE(pred.IsDecided(a, c));
  EXPECT_FALSE(pred.DecidedPartner(a, 2).has_value());
}

TEST(MajorityVoteTest, TightRhoBlocksDecisions) {
  SchemaMatchingPredictor pred(0.8, 1e-6);
  AttrRef a{0, 0}, b{1, 0};
  for (int i = 0; i < 20; ++i) pred.AddPrediction(a, b);
  EXPECT_FALSE(pred.IsDecided(a, b));
}

TEST(MajorityVoteTest, CountsPredictions) {
  SchemaMatchingPredictor pred(0.8, 0.6);
  pred.AddPrediction({0, 0}, {1, 1});
  pred.AddPrediction({1, 1}, {0, 0});  // Order-insensitive accumulation.
  EXPECT_EQ(pred.num_predictions(), 2u);
}

}  // namespace
}  // namespace hera
