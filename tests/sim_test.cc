// Unit and property tests for src/sim: the Value model and every
// similarity metric.

#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <string>
#include <vector>

#include "common/random.h"
#include "sim/metrics.h"
#include "sim/string_metrics.h"
#include "sim/value.h"
#include "text/tfidf.h"

namespace hera {
namespace {

// ------------------------------------------------------------------ Value

TEST(ValueTest, DefaultIsNull) {
  Value v;
  EXPECT_TRUE(v.is_null());
  EXPECT_EQ(v.type(), ValueType::kNull);
  EXPECT_EQ(v.ToString(), "");
}

TEST(ValueTest, StringValue) {
  Value v("hello");
  EXPECT_TRUE(v.is_string());
  EXPECT_EQ(v.AsString(), "hello");
  EXPECT_EQ(v.ToString(), "hello");
}

TEST(ValueTest, NumberValueIntegerRendering) {
  Value v(1999.0);
  EXPECT_TRUE(v.is_number());
  EXPECT_EQ(v.ToString(), "1999");
}

TEST(ValueTest, NumberValueFractionalRendering) {
  Value v(3.5);
  EXPECT_EQ(v.ToString(), "3.5");
}

TEST(ValueTest, ParseEmptyIsNull) {
  EXPECT_TRUE(Value::Parse("").is_null());
  EXPECT_TRUE(Value::Parse("  ").is_null());
  EXPECT_TRUE(Value::Parse("null").is_null());
  EXPECT_TRUE(Value::Parse("NULL").is_null());
}

TEST(ValueTest, ParseSniffsNumbersOnlyWhenAsked) {
  EXPECT_TRUE(Value::Parse("42", false).is_string());
  EXPECT_TRUE(Value::Parse("42", true).is_number());
  EXPECT_DOUBLE_EQ(Value::Parse("42.5", true).AsNumber(), 42.5);
  EXPECT_TRUE(Value::Parse("42a", true).is_string());
}

TEST(ValueTest, ParseTrimsWhitespace) {
  EXPECT_EQ(Value::Parse(" abc ").AsString(), "abc");
}

TEST(ValueTest, Equality) {
  EXPECT_EQ(Value("a"), Value("a"));
  EXPECT_NE(Value("a"), Value("b"));
  EXPECT_EQ(Value(2.0), Value(2.0));
  EXPECT_NE(Value(2.0), Value("2"));
  EXPECT_EQ(Value(), Value());
}

TEST(ValueTest, TypeNames) {
  EXPECT_STREQ(ValueTypeToString(ValueType::kNull), "null");
  EXPECT_STREQ(ValueTypeToString(ValueType::kString), "string");
  EXPECT_STREQ(ValueTypeToString(ValueType::kNumber), "number");
}

// ---------------------------------------------------------- string metrics

TEST(StringMetricsTest, JaccardPaperExample) {
  EXPECT_DOUBLE_EQ(QgramJaccard("Electronic", "electronics", 2), 0.9);
}

TEST(StringMetricsTest, JaccardCaseInsensitiveViaNormalize) {
  EXPECT_DOUBLE_EQ(QgramJaccard("BUSH", "bush", 2), 1.0);
}

TEST(StringMetricsTest, DiceBetweenJaccardAndOverlap) {
  double j = QgramJaccard("night", "nacht", 2);
  double d = QgramDice("night", "nacht", 2);
  double o = QgramOverlap("night", "nacht", 2);
  EXPECT_LE(j, d);
  EXPECT_LE(d, o);
}

TEST(StringMetricsTest, LevenshteinKnownValues) {
  EXPECT_EQ(LevenshteinDistance("kitten", "sitting"), 3u);
  EXPECT_EQ(LevenshteinDistance("", "abc"), 3u);
  EXPECT_EQ(LevenshteinDistance("abc", "abc"), 0u);
  EXPECT_EQ(LevenshteinDistance("flaw", "lawn"), 2u);
}

TEST(StringMetricsTest, NormalizedLevenshteinRange) {
  EXPECT_DOUBLE_EQ(NormalizedLevenshtein("abc", "abc"), 1.0);
  EXPECT_DOUBLE_EQ(NormalizedLevenshtein("abc", "xyz"), 0.0);
  EXPECT_DOUBLE_EQ(NormalizedLevenshtein("", ""), 1.0);
}

TEST(StringMetricsTest, JaroKnownValue) {
  // Classic example: jaro(martha, marhta) = 0.9444...
  EXPECT_NEAR(Jaro("MARTHA", "MARHTA"), 0.944444, 1e-5);
}

TEST(StringMetricsTest, JaroWinklerBoostsSharedPrefix) {
  double jw = JaroWinkler("MARTHA", "MARHTA");
  double j = Jaro("MARTHA", "MARHTA");
  EXPECT_GT(jw, j);
  EXPECT_NEAR(jw, 0.961111, 1e-5);
}

TEST(StringMetricsTest, JaroEdgeCases) {
  EXPECT_DOUBLE_EQ(Jaro("", ""), 1.0);
  EXPECT_DOUBLE_EQ(Jaro("a", ""), 0.0);
  EXPECT_DOUBLE_EQ(Jaro("abc", "abc"), 1.0);
  EXPECT_DOUBLE_EQ(Jaro("abc", "xyz"), 0.0);
}

TEST(StringMetricsTest, MongeElkanTokenReorderInsensitive) {
  // Token order should barely matter.
  double s1 = MongeElkan("John Smith", "Smith John");
  EXPECT_GT(s1, 0.9);
}

TEST(StringMetricsTest, MongeElkanPartialOverlap) {
  double s = MongeElkan("John Smith", "John Doe");
  EXPECT_GT(s, 0.4);
  EXPECT_LT(s, 1.0);
}

TEST(StringMetricsTest, TfIdfCosineExactMatch) {
  TfIdfModel model;
  model.AddDocument("alpha beta");
  model.AddDocument("gamma delta");
  model.Freeze();
  EXPECT_NEAR(TfIdfCosine("alpha beta", "alpha beta", model), 1.0, 1e-9);
  EXPECT_NEAR(TfIdfCosine("alpha beta", "gamma delta", model), 0.0, 1e-9);
}

TEST(StringMetricsTest, SoftTfIdfToleratesTypos) {
  TfIdfModel model;
  model.AddDocument("jonathan smith");
  model.AddDocument("mary jones");
  model.Freeze();
  double soft = SoftTfIdf("jonathan smith", "jonathon smith", model, 0.9);
  double hard = TfIdfCosine("jonathan smith", "jonathon smith", model);
  EXPECT_GT(soft, hard);
  EXPECT_GT(soft, 0.8);
}

// ------------------------------------------------------ metric registry

TEST(MetricsRegistryTest, KnownNames) {
  EXPECT_NE(MakeSimilarity("jaccard_q2"), nullptr);
  EXPECT_NE(MakeSimilarity("jaccard_q3"), nullptr);
  EXPECT_NE(MakeSimilarity("jaccard"), nullptr);
  EXPECT_NE(MakeSimilarity("edit"), nullptr);
  EXPECT_NE(MakeSimilarity("jaro_winkler"), nullptr);
  EXPECT_NE(MakeSimilarity("cosine"), nullptr);
  EXPECT_NE(MakeSimilarity("cosine_q3"), nullptr);
  EXPECT_NE(MakeSimilarity("monge_elkan"), nullptr);
  EXPECT_NE(MakeSimilarity("hybrid(jaccard_q2)"), nullptr);
}

TEST(MetricsRegistryTest, UnknownNamesReturnNull) {
  EXPECT_EQ(MakeSimilarity(""), nullptr);
  EXPECT_EQ(MakeSimilarity("nope"), nullptr);
  EXPECT_EQ(MakeSimilarity("jaccard_q0"), nullptr);
  EXPECT_EQ(MakeSimilarity("hybrid(nope)"), nullptr);
  EXPECT_EQ(MakeSimilarity("soft_tfidf"), nullptr);  // Needs a corpus model.
}

TEST(MetricsRegistryTest, NameRoundTrips) {
  for (const char* name :
       {"jaccard_q2", "jaccard_q3", "edit", "jaro_winkler", "cosine_q2",
        "monge_elkan", "hybrid(jaccard_q2)"}) {
    auto m = MakeSimilarity(name);
    ASSERT_NE(m, nullptr) << name;
    EXPECT_EQ(m->Name(), name);
  }
}

// ------------------------------------------------- ValueSimilarity rules

TEST(ValueSimilarityTest, NullNeverMatches) {
  for (const char* name : {"jaccard_q2", "edit", "jaro_winkler", "cosine_q2",
                           "monge_elkan", "hybrid(jaccard_q2)"}) {
    auto m = MakeSimilarity(name);
    EXPECT_DOUBLE_EQ(m->Compute(Value(), Value("x")), 0.0) << name;
    EXPECT_DOUBLE_EQ(m->Compute(Value("x"), Value()), 0.0) << name;
    EXPECT_DOUBLE_EQ(m->Compute(Value(), Value()), 0.0) << name;
  }
}

TEST(ValueSimilarityTest, NumericSimilarityKnownValues) {
  NumericSimilarity sim;
  EXPECT_DOUBLE_EQ(sim.Compute(Value(100.0), Value(100.0)), 1.0);
  EXPECT_DOUBLE_EQ(sim.Compute(Value(100.0), Value(50.0)), 0.5);
  EXPECT_DOUBLE_EQ(sim.Compute(Value(0.0), Value(0.0)), 1.0);
  EXPECT_DOUBLE_EQ(sim.Compute(Value(1.0), Value(-1.0)), 0.0);
  // Mixed types are not comparable numerically.
  EXPECT_DOUBLE_EQ(sim.Compute(Value(1.0), Value("1")), 0.0);
}

TEST(ValueSimilarityTest, NumericSimilaritySymmetric) {
  NumericSimilarity sim;
  EXPECT_DOUBLE_EQ(sim.Compute(Value(1999.0), Value(2001.0)),
                   sim.Compute(Value(2001.0), Value(1999.0)));
}

TEST(ValueSimilarityTest, HybridDispatchesOnType) {
  auto hybrid = MakeSimilarity("hybrid(jaccard_q2)");
  // Numbers: relative difference (1999 vs 2000 very close).
  EXPECT_GT(hybrid->Compute(Value(1999.0), Value(2000.0)), 0.999);
  // Same numbers as strings under Jaccard share no bigram.
  EXPECT_DOUBLE_EQ(hybrid->Compute(Value("1999"), Value("2000")), 0.0);
  // Mixed: canonical string rendering comparison.
  EXPECT_DOUBLE_EQ(hybrid->Compute(Value(1999.0), Value("1999")), 1.0);
}

// ---------------------------------------------- property sweeps (TEST_P)

class MetricPropertyTest : public ::testing::TestWithParam<const char*> {
 protected:
  std::string RandomString(Rng* rng, size_t max_len) {
    const char kAlphabet[] = "abcdefg hij";
    size_t len = rng->Uniform(max_len + 1);
    std::string s;
    for (size_t i = 0; i < len; ++i) {
      s.push_back(kAlphabet[rng->Uniform(sizeof(kAlphabet) - 1)]);
    }
    return s;
  }
};

TEST_P(MetricPropertyTest, RangeSymmetryIdentity) {
  auto metric = MakeSimilarity(GetParam());
  ASSERT_NE(metric, nullptr);
  Rng rng(99);
  for (int trial = 0; trial < 300; ++trial) {
    Value a(RandomString(&rng, 12));
    Value b(RandomString(&rng, 12));
    double sab = metric->Compute(a, b);
    double sba = metric->Compute(b, a);
    EXPECT_GE(sab, 0.0) << GetParam();
    EXPECT_LE(sab, 1.0) << GetParam();
    EXPECT_NEAR(sab, sba, 1e-12) << GetParam() << " not symmetric for '"
                                 << a.ToString() << "' / '" << b.ToString()
                                 << "'";
    // Identity on non-degenerate strings.
    if (!a.AsString().empty() && a.AsString().find_first_not_of(' ') !=
                                     std::string::npos) {
      EXPECT_DOUBLE_EQ(metric->Compute(a, a), 1.0)
          << GetParam() << " identity failed for '" << a.ToString() << "'";
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllMetrics, MetricPropertyTest,
                         ::testing::Values("jaccard_q2", "jaccard_q3", "edit",
                                           "jaro_winkler", "cosine_q2",
                                           "monge_elkan",
                                           "hybrid(jaccard_q2)"));

class NumericPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(NumericPropertyTest, RangeAndMonotonicity) {
  NumericSimilarity sim;
  Rng rng(GetParam());
  for (int trial = 0; trial < 200; ++trial) {
    double x = rng.UniformDouble() * 1000.0;
    double d1 = rng.UniformDouble() * 100.0;
    double d2 = d1 + rng.UniformDouble() * 100.0;
    double near = sim.Compute(Value(x), Value(x + d1));
    double far = sim.Compute(Value(x), Value(x + d2));
    EXPECT_GE(near, 0.0);
    EXPECT_LE(near, 1.0);
    EXPECT_GE(near, far);  // Farther value never more similar.
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, NumericPropertyTest, ::testing::Values(1, 2, 3));

}  // namespace
}  // namespace hera
