// Tests for src/simjoin: the prefix-filter join must agree exactly
// with the nested-loop oracle for the Jaccard metric (the filter is
// exact there), across thresholds and random inputs.

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <string>
#include <tuple>
#include <vector>

#include "common/random.h"
#include "sim/metrics.h"
#include "simjoin/similarity_join.h"

namespace hera {
namespace {

using PairKey = std::tuple<uint32_t, uint32_t, uint32_t, uint32_t, uint32_t, uint32_t>;

PairKey KeyOf(const ValuePair& p) {
  ValueLabel a = p.a, b = p.b;
  if (b.rid < a.rid) std::swap(a, b);
  return {a.rid, a.fid, a.vid, b.rid, b.fid, b.vid};
}

std::set<PairKey> KeySet(const std::vector<ValuePair>& pairs) {
  std::set<PairKey> out;
  for (const auto& p : pairs) out.insert(KeyOf(p));
  return out;
}

std::vector<LabeledValue> MakeValues(const std::vector<std::string>& strings) {
  std::vector<LabeledValue> out;
  for (uint32_t i = 0; i < strings.size(); ++i) {
    out.push_back({ValueLabel{i, 0, 0}, Value(strings[i])});
  }
  return out;
}

TEST(NestedLoopJoinTest, FindsSimilarPairs) {
  auto values = MakeValues({"electronic", "electronics", "sports"});
  auto metric = MakeSimilarity("jaccard_q2");
  NestedLoopJoin join;
  auto pairs = join.Join(values, *metric, 0.5);
  ASSERT_EQ(pairs.size(), 1u);
  EXPECT_DOUBLE_EQ(pairs[0].sim, 0.9);
}

TEST(NestedLoopJoinTest, ExcludesSameRecordPairs) {
  std::vector<LabeledValue> values = {
      {ValueLabel{0, 0, 0}, Value("abc")},
      {ValueLabel{0, 1, 0}, Value("abc")},  // Same rid: excluded.
      {ValueLabel{1, 0, 0}, Value("abc")},
  };
  auto metric = MakeSimilarity("jaccard_q2");
  auto pairs = NestedLoopJoin().Join(values, *metric, 0.9);
  EXPECT_EQ(pairs.size(), 2u);  // (0,f0)-(1,...) and (0,f1)-(1,...).
  for (const auto& p : pairs) EXPECT_NE(p.a.rid, p.b.rid);
}

TEST(NestedLoopJoinTest, ThresholdZeroKeepsOnlyPositive) {
  // xi = 0 admits every cross-record pair with sim >= 0 (all of them).
  auto values = MakeValues({"abc", "xyz"});
  auto metric = MakeSimilarity("jaccard_q2");
  auto pairs = NestedLoopJoin().Join(values, *metric, 0.0);
  EXPECT_EQ(pairs.size(), 1u);
  EXPECT_DOUBLE_EQ(pairs[0].sim, 0.0);
}

TEST(PrefixFilterJoinTest, MatchesOracleOnSmallExample) {
  auto values = MakeValues(
      {"electronic", "electronics", "sports", "Bush", "J.Bush", "bush@gmail"});
  auto metric = MakeSimilarity("jaccard_q2");
  auto oracle = KeySet(NestedLoopJoin().Join(values, *metric, 0.5));
  auto fast = KeySet(PrefixFilterJoin().Join(values, *metric, 0.5));
  EXPECT_EQ(oracle, fast);
}

TEST(PrefixFilterJoinTest, EmptyInput) {
  auto metric = MakeSimilarity("jaccard_q2");
  EXPECT_TRUE(PrefixFilterJoin().Join({}, *metric, 0.5).empty());
}

TEST(PrefixFilterJoinTest, SingleValueNoPairs) {
  auto values = MakeValues({"alone"});
  auto metric = MakeSimilarity("jaccard_q2");
  EXPECT_TRUE(PrefixFilterJoin().Join(values, *metric, 0.1).empty());
}

TEST(PrefixFilterJoinTest, IdenticalValuesAcrossManyRecords) {
  std::vector<std::string> strings(10, "same value");
  auto values = MakeValues(strings);
  auto metric = MakeSimilarity("jaccard_q2");
  auto pairs = PrefixFilterJoin().Join(values, *metric, 1.0);
  EXPECT_EQ(pairs.size(), 45u);  // C(10, 2).
  for (const auto& p : pairs) EXPECT_DOUBLE_EQ(p.sim, 1.0);
}

TEST(PrefixFilterJoinTest, NumericSweepUnderHybridMetric) {
  std::vector<LabeledValue> values = {
      {ValueLabel{0, 0, 0}, Value(100.0)},
      {ValueLabel{1, 0, 0}, Value(99.0)},   // sim ~0.99.
      {ValueLabel{2, 0, 0}, Value(50.0)},   // sim 0.5 vs 100.
      {ValueLabel{3, 0, 0}, Value(1.0)},    // Far from all.
  };
  auto metric = MakeSimilarity("hybrid(jaccard_q2)");
  auto fast = KeySet(PrefixFilterJoin().Join(values, *metric, 0.9));
  auto oracle = KeySet(NestedLoopJoin().Join(values, *metric, 0.9));
  EXPECT_EQ(fast, oracle);
  EXPECT_EQ(fast.size(), 1u);
}

TEST(PrefixFilterJoinTest, NumericSweepWithNegativeValues) {
  std::vector<LabeledValue> values = {
      {ValueLabel{0, 0, 0}, Value(-100.0)},
      {ValueLabel{1, 0, 0}, Value(-99.0)},
      {ValueLabel{2, 0, 0}, Value(100.0)},
      {ValueLabel{3, 0, 0}, Value(0.0)},
      {ValueLabel{4, 0, 0}, Value(0.0)},
  };
  auto metric = MakeSimilarity("hybrid(jaccard_q2)");
  for (double xi : {0.3, 0.5, 0.9, 1.0}) {
    auto fast = KeySet(PrefixFilterJoin().Join(values, *metric, xi));
    auto oracle = KeySet(NestedLoopJoin().Join(values, *metric, xi));
    EXPECT_EQ(fast, oracle) << "xi=" << xi;
  }
}

TEST(PrefixFilterJoinTest, MixedStringAndNumericValues) {
  std::vector<LabeledValue> values = {
      {ValueLabel{0, 0, 0}, Value("drama film")},
      {ValueLabel{1, 0, 0}, Value("drama films")},
      {ValueLabel{2, 0, 0}, Value(1999.0)},
      {ValueLabel{3, 0, 0}, Value(1998.0)},
      {ValueLabel{4, 0, 0}, Value()},  // Null: never joins.
  };
  auto metric = MakeSimilarity("hybrid(jaccard_q2)");
  auto fast = KeySet(PrefixFilterJoin().Join(values, *metric, 0.6));
  auto oracle = KeySet(NestedLoopJoin().Join(values, *metric, 0.6));
  EXPECT_EQ(fast, oracle);
  EXPECT_EQ(fast.size(), 2u);  // String pair + numeric pair.
}

// Property sweep: random string corpora, several thresholds — fast join
// must equal the oracle exactly (prefix filter is exact for Jaccard).
class JoinEquivalenceTest
    : public ::testing::TestWithParam<std::tuple<double, uint64_t>> {};

TEST_P(JoinEquivalenceTest, PrefixFilterEqualsOracle) {
  auto [xi, seed] = GetParam();
  Rng rng(seed);
  const char* kWords[] = {"norman", "street", "bush",  "gmail", "electronic",
                          "manager", "sports", "west",  "john",  "product"};
  std::vector<LabeledValue> values;
  const uint32_t kRecords = 30;
  for (uint32_t r = 0; r < kRecords; ++r) {
    uint32_t fields = 1 + static_cast<uint32_t>(rng.Uniform(4));
    for (uint32_t f = 0; f < fields; ++f) {
      std::string s = kWords[rng.Uniform(10)];
      if (rng.Bernoulli(0.5)) s += " " + std::string(kWords[rng.Uniform(10)]);
      if (rng.Bernoulli(0.3)) s[rng.Uniform(s.size())] = 'z';  // Typo.
      values.push_back({ValueLabel{r, f, 0}, Value(s)});
    }
  }
  auto metric = MakeSimilarity("jaccard_q2");
  auto oracle = KeySet(NestedLoopJoin().Join(values, *metric, xi));
  auto fast = KeySet(PrefixFilterJoin().Join(values, *metric, xi));
  EXPECT_EQ(oracle, fast) << "xi=" << xi << " seed=" << seed;
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, JoinEquivalenceTest,
    ::testing::Combine(::testing::Values(0.3, 0.5, 0.7, 0.9, 1.0),
                       ::testing::Values(1u, 2u, 3u, 4u)));

// A guard trip between candidate generation and verification must not
// lose pairs from the accounting: the batch whose weighted Tick(n)
// fired was counted as candidates but never verified, and is reported
// shed — candidates == verified + shed_candidates holds exactly at the
// trip boundary.
TEST(PrefixFilterJoinTest, ShedCandidatesExactAtGuardTrip) {
  // Identical values across many records: candidate lists grow with
  // the probe index, so the 1024-op ticker boundary is crossed inside
  // a large Tick(candidates.size()) batch.
  std::vector<std::string> strings(200, "same value");
  auto values = MakeValues(strings);
  auto metric = MakeSimilarity("jaccard_q2");

  CancellationToken token = CancellationToken::Make();
  token.RequestCancel();  // Trips at the first ticker boundary.
  RunGuard guard;
  guard.WithCancellation(token);
  std::vector<ValuePair> out;
  JoinReport report;
  ASSERT_TRUE(
      PrefixFilterJoin().Join(values, *metric, 1.0, guard, &out, &report).ok());
  EXPECT_TRUE(report.truncated);
  EXPECT_GT(report.candidates, 0u);
  EXPECT_GT(report.shed_candidates, 0u);
  EXPECT_EQ(report.candidates, report.verified + report.shed_candidates);

  // Unguarded control: nothing is shed and every candidate is verified.
  std::vector<ValuePair> full;
  JoinReport full_report;
  ASSERT_TRUE(PrefixFilterJoin()
                  .Join(values, *metric, 1.0, RunGuard(), &full, &full_report)
                  .ok());
  EXPECT_FALSE(full_report.truncated);
  EXPECT_EQ(full_report.shed_candidates, 0u);
  EXPECT_EQ(full_report.candidates, full_report.verified);
}

// Similarity values reported by the fast join must equal the metric's.
TEST(PrefixFilterJoinTest, ReportedSimilaritiesMatchMetric) {
  auto values = MakeValues({"2 Norman Street", "2 West Norman", "West Norman"});
  auto metric = MakeSimilarity("jaccard_q2");
  for (const auto& p : PrefixFilterJoin().Join(values, *metric, 0.2)) {
    double expect = metric->Compute(values[p.a.rid].value, values[p.b.rid].value);
    EXPECT_NEAR(p.sim, expect, 1e-12);
  }
}

}  // namespace
}  // namespace hera
