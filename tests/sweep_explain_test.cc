// Tests for the delta sweep helper, the pair explanation API, and the
// corpus-model builders.

#include <gtest/gtest.h>

#include <string>

#include "core/explain.h"
#include "core/hera.h"
#include "core/sweep.h"
#include "data/corpus_model.h"
#include "sim/metrics.h"
#include "testing_util.h"

namespace hera {
namespace {

// ------------------------------------------------------------- SweepDelta

TEST(SweepDeltaTest, RequiresGroundTruth) {
  Dataset ds;
  uint32_t s = ds.schemas().Register(Schema("S", {"a"}));
  ds.AddRecord(s, {Value("x")});
  auto sweep = SweepDelta(ds, HeraOptions{}, {0.5});
  EXPECT_FALSE(sweep.ok());
  EXPECT_EQ(sweep.status().code(), StatusCode::kFailedPrecondition);
}

TEST(SweepDeltaTest, RejectsEmptyGrid) {
  Dataset ds = testing_util::MakeCustomersDataset();
  EXPECT_FALSE(SweepDelta(ds, HeraOptions{}, {}).ok());
}

TEST(SweepDeltaTest, ProducesOnePointPerDelta) {
  Dataset ds = testing_util::MakeCustomersDataset();
  auto sweep = SweepDelta(ds, HeraOptions{}, {0.3, 0.5, 0.9});
  ASSERT_TRUE(sweep.ok());
  ASSERT_EQ(sweep->size(), 3u);
  EXPECT_DOUBLE_EQ((*sweep)[0].delta, 0.3);
  EXPECT_DOUBLE_EQ((*sweep)[2].delta, 0.9);
  // At delta = 0.5 the example resolves perfectly (Fig 8).
  EXPECT_DOUBLE_EQ((*sweep)[1].metrics.f1, 1.0);
}

TEST(SweepDeltaTest, BestByF1PicksOptimum) {
  Dataset ds = testing_util::MakeCustomersDataset();
  auto sweep = SweepDelta(ds, HeraOptions{}, {0.1, 0.5, 0.99});
  ASSERT_TRUE(sweep.ok());
  const SweepPoint& best = BestByF1(*sweep);
  EXPECT_DOUBLE_EQ(best.delta, 0.5);
  EXPECT_DOUBLE_EQ(best.metrics.f1, 1.0);
}

TEST(SweepDeltaTest, PropagatesBadOptions) {
  Dataset ds = testing_util::MakeCustomersDataset();
  HeraOptions bad;
  bad.metric = "nope";
  EXPECT_FALSE(SweepDelta(ds, bad, {0.5}).ok());
}

// ------------------------------------------------------------ ExplainPair

TEST(ExplainPairTest, ExplainsSimilarBaseRecords) {
  Dataset ds = testing_util::MakeCustomersDataset();
  auto metric = MakeSimilarity("jaccard_q2");
  SuperRecord r1 = SuperRecord::FromRecord(ds.record(0));
  SuperRecord r6 = SuperRecord::FromRecord(ds.record(5));
  PairExplanation ex = ExplainPair(ds.schemas(), r1, r6, *metric, 0.5);
  EXPECT_NEAR(ex.sim, 3.9 / 5.0, 1e-9);
  EXPECT_EQ(ex.denominator, 5u);
  ASSERT_EQ(ex.matches.size(), 4u);
  // Every match carries attribute names and the value pair.
  bool saw_email = false;
  for (const MatchedField& m : ex.matches) {
    EXPECT_FALSE(m.attr_a.empty());
    EXPECT_FALSE(m.attr_b.empty());
    if (m.attr_a == "e-mail" && m.attr_b == "work mailbox") {
      saw_email = true;
      EXPECT_EQ(m.value_a, "bush@gmail");
      EXPECT_DOUBLE_EQ(m.sim, 1.0);
    }
  }
  EXPECT_TRUE(saw_email);
}

TEST(ExplainPairTest, DissimilarPairExplainsEmpty) {
  Dataset ds = testing_util::MakeCustomersDataset();
  auto metric = MakeSimilarity("jaccard_q2");
  SuperRecord r1 = SuperRecord::FromRecord(ds.record(0));
  SuperRecord r2 = SuperRecord::FromRecord(ds.record(1));
  PairExplanation ex = ExplainPair(ds.schemas(), r1, r2, *metric, 0.5);
  EXPECT_DOUBLE_EQ(ex.sim, 0.0);
  EXPECT_TRUE(ex.matches.empty());
}

TEST(ExplainPairTest, ToStringIsReadable) {
  Dataset ds = testing_util::MakeCustomersDataset();
  auto metric = MakeSimilarity("jaccard_q2");
  SuperRecord r1 = SuperRecord::FromRecord(ds.record(0));
  SuperRecord r6 = SuperRecord::FromRecord(ds.record(5));
  std::string text = ExplainPair(ds.schemas(), r1, r6, *metric, 0.5).ToString();
  EXPECT_NE(text.find("Sim = 0.780"), std::string::npos) << text;
  EXPECT_NE(text.find("bush@gmail"), std::string::npos);
}

TEST(ExplainPairTest, ArgumentOrderInsensitiveSimilarity) {
  Dataset ds = testing_util::MakeCustomersDataset();
  auto metric = MakeSimilarity("jaccard_q2");
  SuperRecord r1 = SuperRecord::FromRecord(ds.record(0));
  SuperRecord r6 = SuperRecord::FromRecord(ds.record(5));
  PairExplanation ab = ExplainPair(ds.schemas(), r1, r6, *metric, 0.5);
  PairExplanation ba = ExplainPair(ds.schemas(), r6, r1, *metric, 0.5);
  EXPECT_NEAR(ab.sim, ba.sim, 1e-12);
  EXPECT_EQ(ab.matches.size(), ba.matches.size());
}

// ----------------------------------------------------------- CorpusModel

TEST(CorpusModelTest, BuildsFrozenModelOverAllValues) {
  Dataset ds = testing_util::MakeCustomersDataset();
  auto model = BuildTfIdfModel(ds);
  ASSERT_NE(model, nullptr);
  EXPECT_TRUE(model->frozen());
  // 6 records x (5,3,5,5,5,5) non-null values = 26 documents... count:
  // r1..r6 have 5+3+3+5+5+5 = 26 values.
  EXPECT_EQ(model->num_documents(), 26u);
}

TEST(CorpusModelTest, SoftTfIdfMetricWorksInHera) {
  Dataset ds = testing_util::MakeCustomersDataset();
  HeraOptions opts;
  opts.similarity = MakeSoftTfIdfFor(ds, 0.9);
  opts.xi = 0.6;
  opts.delta = 0.4;
  auto result = Hera(opts).Run(ds);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->entity_of.size(), ds.size());
  // Soft TF-IDF matches the identical name/address/email values; the
  // easy pairs must merge.
  EXPECT_EQ(result->entity_of[0], result->entity_of[5]);  // r1, r6.
}

}  // namespace
}  // namespace hera
