// Shared fixtures for the HERA test suite.

#ifndef HERA_TESTS_TESTING_UTIL_H_
#define HERA_TESTS_TESTING_UTIL_H_

#include <map>
#include <string>
#include <vector>

#include "record/dataset.h"
#include "sim/value.h"

namespace hera {
namespace testing_util {

/// Builds the paper's Fig 1 motivating example: six customer records
/// under three source schemas. Record ids: r1..r6 -> 0..5. Ground
/// truth: {r1, r2, r4, r6} entity 0, {r3, r5} entity 1.
inline Dataset MakeCustomersDataset() {
  Dataset ds;
  uint32_t customer1 = ds.schemas().Register(
      Schema("CustomerI", {"name", "address", "e-mail", "city", "Con.Type"}));
  uint32_t customer2 =
      ds.schemas().Register(Schema("CustomerII", {"name", "Contact No.", "Job"}));
  uint32_t customer3 = ds.schemas().Register(Schema(
      "CustomerIII", {"name", "addr", "work mailbox", "Tel", "Con.Type"}));

  auto sv = [](const char* s) { return Value(std::string(s)); };
  // r1
  ds.AddRecord(customer1, {sv("John"), sv("2 Norman Street"), sv("bush@gmail"),
                           sv("LA"), sv("Electronic")});
  // r2
  ds.AddRecord(customer2, {sv("Bush"), sv("831-432"), sv("manager")});
  // r3
  ds.AddRecord(customer2, {sv("J.Bush"), sv("247-326"), sv("Product manager")});
  // r4
  ds.AddRecord(customer3, {sv("Bush"), sv("2 West Norman"), sv("bush@gmail"),
                           sv("831-432"), sv("Electronic")});
  // r5
  ds.AddRecord(customer3, {sv("J.Bush"), sv("West Norman"), sv("john@gmail"),
                           sv("247-326"), sv("sports")});
  // r6
  ds.AddRecord(customer3, {sv("John"), sv("2 Norman Street"), sv("bush@gmail"),
                           sv("831-432"), sv("electronics")});

  ds.entity_of() = {0, 0, 1, 0, 1, 0};

  // Canonical attribute concepts (manual curation, as the paper's
  // Table I does): 0 name, 1 address, 2 e-mail, 3 city, 4 Con.Type,
  // 5 phone, 6 job.
  auto map_attr = [&](uint32_t schema, uint32_t attr, uint32_t concept_id) {
    ds.canonical_attr()[AttrRef{schema, attr}] = concept_id;
  };
  map_attr(customer1, 0, 0);
  map_attr(customer1, 1, 1);
  map_attr(customer1, 2, 2);
  map_attr(customer1, 3, 3);
  map_attr(customer1, 4, 4);
  map_attr(customer2, 0, 0);
  map_attr(customer2, 1, 5);
  map_attr(customer2, 2, 6);
  map_attr(customer3, 0, 0);
  map_attr(customer3, 1, 1);
  map_attr(customer3, 2, 2);
  map_attr(customer3, 3, 5);
  map_attr(customer3, 4, 4);
  return ds;
}

/// True iff the two labelings induce identical partitions.
inline bool SamePartition(const std::vector<uint32_t>& a,
                          const std::vector<uint32_t>& b) {
  if (a.size() != b.size()) return false;
  std::map<uint32_t, uint32_t> fwd, bwd;
  for (size_t i = 0; i < a.size(); ++i) {
    auto [f, inserted_f] = fwd.emplace(a[i], b[i]);
    if (!inserted_f && f->second != b[i]) return false;
    auto [g, inserted_g] = bwd.emplace(b[i], a[i]);
    if (!inserted_g && g->second != a[i]) return false;
  }
  return true;
}

}  // namespace testing_util
}  // namespace hera

#endif  // HERA_TESTS_TESTING_UTIL_H_
