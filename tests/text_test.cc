// Unit tests for src/text: normalization, q-grams, tokenizers, TF-IDF.

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "text/normalize.h"
#include "text/qgram.h"
#include "text/tfidf.h"
#include "text/tokenizer.h"

namespace hera {
namespace {

// ------------------------------------------------------------- Normalize

TEST(NormalizeTest, LowercasesByDefault) {
  EXPECT_EQ(Normalize("AbC"), "abc");
}

TEST(NormalizeTest, StripsPunctuationToSpaces) {
  EXPECT_EQ(Normalize("J.Bush"), "j bush");
  EXPECT_EQ(Normalize("831-432"), "831 432");
}

TEST(NormalizeTest, CollapsesWhitespace) {
  EXPECT_EQ(Normalize("  a   b  "), "a b");
  EXPECT_EQ(Normalize("a\t\tb"), "a b");
}

TEST(NormalizeTest, EmptyAndAllPunctuation) {
  EXPECT_EQ(Normalize(""), "");
  EXPECT_EQ(Normalize("!!!"), "");
}

TEST(NormalizeTest, OptionsDisableSteps) {
  NormalizeOptions opts;
  opts.lowercase = false;
  opts.strip_punctuation = false;
  opts.collapse_whitespace = false;
  EXPECT_EQ(Normalize("A.B  C", opts), "A.B  C");
}

TEST(NormalizeTest, Idempotent) {
  std::string once = Normalize("J. Bush-JR  !");
  EXPECT_EQ(Normalize(once), once);
}

// ----------------------------------------------------------------- Qgram

TEST(QgramTest, BasicBigrams) {
  // "abc" -> {ab, bc}, sorted.
  EXPECT_EQ(QgramSet("abc", 2), (std::vector<std::string>{"ab", "bc"}));
}

TEST(QgramTest, DeduplicatesRepeatedGrams) {
  // "aaaa" -> {"aa"} only.
  EXPECT_EQ(QgramSet("aaaa", 2), (std::vector<std::string>{"aa"}));
}

TEST(QgramTest, ShortStringYieldsWholeString) {
  EXPECT_EQ(QgramSet("x", 2), (std::vector<std::string>{"x"}));
  EXPECT_EQ(QgramSet("ab", 3), (std::vector<std::string>{"ab"}));
}

TEST(QgramTest, EmptyStringYieldsEmptySet) {
  EXPECT_TRUE(QgramSet("", 2).empty());
}

TEST(QgramTest, UnigramsEqualDistinctChars) {
  auto grams = QgramSet("banana", 1);
  EXPECT_EQ(grams, (std::vector<std::string>{"a", "b", "n"}));
}

TEST(QgramTest, OverlapOfSets) {
  auto a = QgramSet("night", 2);
  auto b = QgramSet("nacht", 2);
  // Shared bigram: "ht" only.
  EXPECT_EQ(OverlapOfSets(a, b), 1u);
}

TEST(QgramTest, JaccardIdentical) {
  auto a = QgramSet("electronic", 2);
  EXPECT_DOUBLE_EQ(JaccardOfSets(a, a), 1.0);
}

TEST(QgramTest, JaccardDisjoint) {
  EXPECT_DOUBLE_EQ(JaccardOfSets(QgramSet("abc", 2), QgramSet("xyz", 2)), 0.0);
}

TEST(QgramTest, JaccardEmptySetsScoreZero) {
  // Matching on nothing is not evidence (library convention).
  EXPECT_DOUBLE_EQ(JaccardOfSets({}, {}), 0.0);
  EXPECT_DOUBLE_EQ(JaccardOfSets(QgramSet("ab", 2), {}), 0.0);
}

TEST(QgramTest, PaperExampleElectronics) {
  // Example 3: simv(Electronic, electronics) with 2-grams.
  // grams(electronic) ⊂ grams(electronics), 9 vs 10 grams -> 0.9.
  auto a = QgramSet("electronic", 2);
  auto b = QgramSet("electronics", 2);
  EXPECT_EQ(a.size(), 9u);
  EXPECT_EQ(b.size(), 10u);
  EXPECT_DOUBLE_EQ(JaccardOfSets(a, b), 0.9);
}

class QgramSweepTest : public ::testing::TestWithParam<int> {};

TEST_P(QgramSweepTest, GramCountMatchesFormula) {
  const int q = GetParam();
  const std::string s = "abcdefghij";  // All distinct chars.
  auto grams = QgramSet(s, q);
  EXPECT_EQ(grams.size(), s.size() - q + 1);
  for (const auto& g : grams) EXPECT_EQ(g.size(), static_cast<size_t>(q));
}

INSTANTIATE_TEST_SUITE_P(Q1to5, QgramSweepTest, ::testing::Values(1, 2, 3, 4, 5));

// ------------------------------------------------------- QgramDictionary

TEST(QgramDictionaryTest, EncodeSortedAscending) {
  QgramDictionary dict(2);
  dict.Add("abab");
  dict.Add("abcd");
  dict.Freeze();
  auto ids = dict.Encode("abcd");
  EXPECT_TRUE(std::is_sorted(ids.begin(), ids.end()));
}

TEST(QgramDictionaryTest, RarerGramsGetSmallerIds) {
  QgramDictionary dict(2);
  // "ab" appears twice across docs, "cd" once.
  dict.Add("abx");
  dict.Add("aby");
  dict.Add("cdz");
  dict.Freeze();
  auto ab = dict.Encode("ab");
  auto cd = dict.Encode("cd");
  ASSERT_EQ(ab.size(), 1u);
  ASSERT_EQ(cd.size(), 1u);
  EXPECT_LT(cd[0], ab[0]);
}

TEST(QgramDictionaryTest, UnknownGramsGetFreshIds) {
  QgramDictionary dict(2);
  dict.Add("abcd");
  dict.Freeze();
  size_t vocab = dict.vocab_size();
  auto ids = dict.Encode("zzzz");
  EXPECT_FALSE(ids.empty());
  EXPECT_GT(dict.vocab_size(), vocab);
}

TEST(QgramDictionaryTest, SameStringSameEncoding) {
  QgramDictionary dict(2);
  dict.Add("hello world");
  dict.Freeze();
  EXPECT_EQ(dict.Encode("hello"), dict.Encode("hello"));
}

// -------------------------------------------------------------- Tokenizer

TEST(TokenizerTest, SplitsOnWhitespaceAfterNormalize) {
  EXPECT_EQ(WordTokens("John  Smith"),
            (std::vector<std::string>{"john", "smith"}));
}

TEST(TokenizerTest, PunctuationSeparatesTokens) {
  EXPECT_EQ(WordTokens("J.Bush"), (std::vector<std::string>{"j", "bush"}));
}

TEST(TokenizerTest, KeepsDuplicatesInBagMode) {
  EXPECT_EQ(WordTokens("a b a"), (std::vector<std::string>{"a", "b", "a"}));
}

TEST(TokenizerTest, SetModeSortsAndDedups) {
  EXPECT_EQ(WordTokenSet("b a b"), (std::vector<std::string>{"a", "b"}));
}

TEST(TokenizerTest, EmptyInput) {
  EXPECT_TRUE(WordTokens("").empty());
  EXPECT_TRUE(WordTokenSet("  . ").empty());
}

// ------------------------------------------------------------------ TfIdf

TEST(TfIdfTest, RareTokenHasHigherIdf) {
  TfIdfModel model;
  model.AddDocument("common word alpha");
  model.AddDocument("common word beta");
  model.AddDocument("common word gamma");
  model.Freeze();
  EXPECT_GT(model.Idf("alpha"), model.Idf("common"));
}

TEST(TfIdfTest, UnseenTokenGetsMaxIdf) {
  TfIdfModel model;
  model.AddDocument("a b");
  model.AddDocument("a c");
  model.Freeze();
  EXPECT_GE(model.Idf("zzz"), model.Idf("b"));
  EXPECT_GT(model.Idf("zzz"), model.Idf("a"));
}

TEST(TfIdfTest, WeightVectorIsL2Normalized) {
  TfIdfModel model;
  model.AddDocument("x y z");
  model.AddDocument("x q");
  model.Freeze();
  auto w = model.WeightVector("x y");
  double norm_sq = 0.0;
  for (const auto& [tok, weight] : w) {
    (void)tok;
    norm_sq += weight * weight;
  }
  EXPECT_NEAR(norm_sq, 1.0, 1e-9);
}

TEST(TfIdfTest, EmptyValueGivesEmptyVector) {
  TfIdfModel model;
  model.AddDocument("a");
  model.Freeze();
  EXPECT_TRUE(model.WeightVector("").empty());
}

TEST(TfIdfTest, DocumentCountTracked) {
  TfIdfModel model;
  model.AddDocument("a");
  model.AddDocument("b");
  model.Freeze();
  EXPECT_EQ(model.num_documents(), 2u);
  EXPECT_TRUE(model.frozen());
}

}  // namespace
}  // namespace hera
