// Property test: the full verification pipeline (index -> refined
// field set -> simplification -> Kuhn-Munkres) must compute exactly
// Definition 5 — the maximum-weight one-to-one field matching over
// field similarities >= xi, normalized by min(|R_i|, |R_j|) — as
// checked against an exhaustive brute force on random super records.

#include <gtest/gtest.h>

#include <algorithm>
#include <functional>
#include <string>
#include <vector>

#include "common/random.h"
#include "core/verifier.h"
#include "index/value_pair_index.h"
#include "record/dataset.h"
#include "record/super_record.h"
#include "sim/metrics.h"
#include "simjoin/similarity_join.h"

namespace hera {
namespace {

/// Builds a random super record with `fields` fields of 1-2 values
/// drawn from a small vocabulary (so collisions and conflicts happen).
SuperRecord RandomSuperRecord(uint32_t rid, size_t fields, Rng* rng) {
  const char* kVocab[] = {"alpha bravo", "alpha bravx", "charlie delta",
                          "charlie deltx", "echo fox",   "echo fix",
                          "golf hotel",   "golf hotels", "india juliet"};
  Dataset scratch;
  std::vector<std::string> attr_names;
  for (size_t i = 0; i < fields; ++i) attr_names.push_back("a" + std::to_string(i));
  uint32_t sid = scratch.schemas().Register(Schema("S", attr_names));
  std::vector<Value> values;
  for (size_t i = 0; i < fields; ++i) {
    values.emplace_back(std::string(kVocab[rng->Uniform(std::size(kVocab))]));
  }
  uint32_t id = scratch.AddRecord(sid, values);
  SuperRecord sr = SuperRecord::FromRecord(scratch.record(id));
  sr.set_rid(rid);
  // Optionally add extra values to some fields (super-record structure).
  std::vector<FieldMatch> no_match;
  (void)no_match;
  return sr;
}

/// Brute force Definition 5: field similarities via exhaustive max
/// over value pairs, then exhaustive max-weight one-to-one matching.
double BruteForceSim(const SuperRecord& a, const SuperRecord& b,
                     const ValueSimilarity& simv, double xi) {
  size_t na = a.num_fields(), nb = b.num_fields();
  std::vector<std::vector<double>> w(na, std::vector<double>(nb, -1.0));
  for (size_t i = 0; i < na; ++i) {
    for (size_t j = 0; j < nb; ++j) {
      double best = 0.0;
      for (size_t p = 0; p < a.field(i).size(); ++p) {
        for (size_t q = 0; q < b.field(j).size(); ++q) {
          best = std::max(best, simv.Compute(a.field(i).value(p).value,
                                             b.field(j).value(q).value));
        }
      }
      if (best >= xi) w[i][j] = best;
    }
  }
  std::vector<bool> used(nb, false);
  std::function<double(size_t)> solve = [&](size_t i) -> double {
    if (i == na) return 0.0;
    double best = solve(i + 1);
    for (size_t j = 0; j < nb; ++j) {
      if (!used[j] && w[i][j] >= 0.0) {
        used[j] = true;
        best = std::max(best, w[i][j] + solve(i + 1));
        used[j] = false;
      }
    }
    return best;
  };
  return solve(0) / static_cast<double>(std::min(na, nb));
}

class VerifierPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(VerifierPropertyTest, MatchesBruteForceDefinition5) {
  Rng rng(GetParam());
  auto metric = MakeSimilarity("jaccard_q2");
  const double xi = 0.4;
  for (int trial = 0; trial < 40; ++trial) {
    SuperRecord a = RandomSuperRecord(0, 2 + rng.Uniform(4), &rng);
    SuperRecord b = RandomSuperRecord(1, 2 + rng.Uniform(4), &rng);

    // Index route (production path).
    std::vector<LabeledValue> values;
    for (const SuperRecord* sr : {&a, &b}) {
      for (uint32_t f = 0; f < sr->num_fields(); ++f) {
        for (uint32_t v = 0; v < sr->field(f).size(); ++v) {
          values.push_back(
              {ValueLabel{sr->rid(), f, v}, sr->field(f).value(v).value});
        }
      }
    }
    ValuePairIndex index;
    index.Build(NestedLoopJoin().Join(values, *metric, xi));
    VerifyResult vr =
        InstanceBasedVerifier().Verify(a, b, index.PairsFor(0, 1));

    double expected = BruteForceSim(a, b, *metric, xi);
    EXPECT_NEAR(vr.sim, expected, 1e-9)
        << "trial " << trial << "\n a=" << a.ToString()
        << "\n b=" << b.ToString();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, VerifierPropertyTest,
                         ::testing::Values(101, 202, 303, 404, 505, 606));

}  // namespace
}  // namespace hera
