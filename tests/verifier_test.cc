// Tests for the instance-based verifier (Section IV-A), including the
// paper's Example 3 similarity value and forced schema matchings.

#include <gtest/gtest.h>

#include <memory>
#include <set>
#include <vector>

#include "core/verifier.h"
#include "index/value_pair_index.h"
#include "record/super_record.h"
#include "schema/majority_vote.h"
#include "sim/metrics.h"
#include "simjoin/similarity_join.h"
#include "testing_util.h"

namespace hera {
namespace {

/// Builds the index over a set of super records and returns it.
ValuePairIndex IndexOf(const std::vector<SuperRecord>& records,
                       const ValueSimilarity& simv, double xi) {
  std::vector<LabeledValue> values;
  for (const SuperRecord& sr : records) {
    for (uint32_t f = 0; f < sr.num_fields(); ++f) {
      for (uint32_t v = 0; v < sr.field(f).size(); ++v) {
        values.push_back({ValueLabel{sr.rid(), f, v}, sr.field(f).value(v).value});
      }
    }
  }
  ValuePairIndex index;
  index.Build(NestedLoopJoin().Join(values, simv, xi));
  return index;
}

class VerifierTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ds_ = testing_util::MakeCustomersDataset();
    metric_ = MakeSimilarity("jaccard_q2");
  }

  Dataset ds_;
  ValueSimilarityPtr metric_;
};

TEST_F(VerifierTest, BaseRecordPairSimilarity) {
  // r1 vs r6: name 1.0, address 1.0, e-mail 1.0, Con.Type 0.9 over
  // min(5,5) fields -> 0.78.
  SuperRecord r1 = SuperRecord::FromRecord(ds_.record(0));
  SuperRecord r6 = SuperRecord::FromRecord(ds_.record(5));
  auto index = IndexOf({r1, r6}, *metric_, 0.5);
  VerifyResult vr =
      InstanceBasedVerifier().Verify(r1, r6, index.PairsFor(0, 5));
  EXPECT_NEAR(vr.sim, (1.0 + 1.0 + 1.0 + 0.9) / 5.0, 1e-9);
  EXPECT_EQ(vr.matching.size(), 4u);
}

TEST_F(VerifierTest, DescriptionDifferencePairScoresLow) {
  // r1 vs r2 share nothing above xi: the description-difference pair.
  SuperRecord r1 = SuperRecord::FromRecord(ds_.record(0));
  SuperRecord r2 = SuperRecord::FromRecord(ds_.record(1));
  auto index = IndexOf({r1, r2}, *metric_, 0.5);
  VerifyResult vr =
      InstanceBasedVerifier().Verify(r1, r2, index.PairsFor(0, 1));
  EXPECT_DOUBLE_EQ(vr.sim, 0.0);
  EXPECT_TRUE(vr.matching.empty());
}

TEST_F(VerifierTest, SuperRecordPairExample3) {
  // Example 3 at xi = 0.35: Sim(R1, R2) = (0.37 + 1 + 1 + 1)/6 = 0.56.
  // Our normalization differs slightly on the address pair (the paper
  // reports 0.37); we assert three exact matches plus one address pair
  // in [0.3, 0.45], summed over 6 fields.
  SuperRecord r1 = SuperRecord::FromRecord(ds_.record(0));
  SuperRecord r6 = SuperRecord::FromRecord(ds_.record(5));
  SuperRecord r2 = SuperRecord::FromRecord(ds_.record(1));
  SuperRecord r4 = SuperRecord::FromRecord(ds_.record(3));
  SuperRecord big1 = SuperRecord::Merge(
      r1, r6, {{0, 0, 1.0}, {1, 1, 1.0}, {2, 2, 1.0}, {4, 4, 0.9}}, 0);
  SuperRecord big2 =
      SuperRecord::Merge(r2, r4, {{0, 0, 1.0}, {1, 3, 1.0}}, 1);
  ASSERT_EQ(big1.num_fields(), 6u);
  ASSERT_EQ(big2.num_fields(), 6u);

  auto index = IndexOf({big1, big2}, *metric_, 0.30);
  VerifyResult vr =
      InstanceBasedVerifier().Verify(big1, big2, index.PairsFor(0, 1));
  EXPECT_EQ(vr.matching.size(), 4u);
  EXPECT_GT(vr.sim, 0.5);
  EXPECT_LT(vr.sim, 0.62);
}

TEST_F(VerifierTest, EmptyPairsGiveZero) {
  SuperRecord r1 = SuperRecord::FromRecord(ds_.record(0));
  SuperRecord r2 = SuperRecord::FromRecord(ds_.record(1));
  VerifyResult vr = InstanceBasedVerifier().Verify(r1, r2, {});
  EXPECT_DOUBLE_EQ(vr.sim, 0.0);
}

TEST_F(VerifierTest, PredictionsCarryAttributeOrigins) {
  SuperRecord r1 = SuperRecord::FromRecord(ds_.record(0));
  SuperRecord r6 = SuperRecord::FromRecord(ds_.record(5));
  auto index = IndexOf({r1, r6}, *metric_, 0.5);
  VerifyResult vr =
      InstanceBasedVerifier().Verify(r1, r6, index.PairsFor(0, 5));
  // Every matched field pair yields one prediction; schemas differ
  // (CustomerI = 0, CustomerIII = 2).
  EXPECT_EQ(vr.predictions.size(), vr.matching.size());
  for (const auto& [a, b] : vr.predictions) {
    EXPECT_EQ(a.schema_id, 0u);
    EXPECT_EQ(b.schema_id, 2u);
  }
}

TEST_F(VerifierTest, ForcedPairsFromDecidedMatchings) {
  // Decide CustomerI.name ≈ CustomerIII.name, then verify r1 vs r6:
  // the name pair must be forced (not solved by KM).
  SchemaMatchingPredictor pred(0.8, 0.9);
  for (int i = 0; i < 10; ++i) pred.AddPrediction({0, 0}, {2, 0});
  ASSERT_TRUE(pred.IsDecided({0, 0}, {2, 0}));

  SuperRecord r1 = SuperRecord::FromRecord(ds_.record(0));
  SuperRecord r6 = SuperRecord::FromRecord(ds_.record(5));
  auto index = IndexOf({r1, r6}, *metric_, 0.5);
  InstanceBasedVerifier verifier(&pred);
  VerifyResult vr = verifier.Verify(r1, r6, index.PairsFor(0, 5));
  EXPECT_EQ(vr.forced_pairs, 1u);
  // Similarity must be identical with and without forcing here (the
  // forced pair is part of the optimum anyway).
  VerifyResult plain =
      InstanceBasedVerifier().Verify(r1, r6, index.PairsFor(0, 5));
  EXPECT_NEAR(vr.sim, plain.sim, 1e-9);
}

TEST_F(VerifierTest, MatchingIsOneToOne) {
  SuperRecord r4 = SuperRecord::FromRecord(ds_.record(3));
  SuperRecord r5 = SuperRecord::FromRecord(ds_.record(4));
  auto index = IndexOf({r4, r5}, *metric_, 0.2);
  VerifyResult vr =
      InstanceBasedVerifier().Verify(r4, r5, index.PairsFor(3, 4));
  std::set<uint32_t> left, right;
  for (const FieldMatch& m : vr.matching) {
    EXPECT_TRUE(left.insert(m.field_a).second);
    EXPECT_TRUE(right.insert(m.field_b).second);
  }
}

TEST_F(VerifierTest, SimilarityWithinUnitInterval) {
  for (uint32_t i = 0; i < ds_.size(); ++i) {
    for (uint32_t j = i + 1; j < ds_.size(); ++j) {
      SuperRecord a = SuperRecord::FromRecord(ds_.record(i));
      SuperRecord b = SuperRecord::FromRecord(ds_.record(j));
      auto index = IndexOf({a, b}, *metric_, 0.3);
      VerifyResult vr =
          InstanceBasedVerifier().Verify(a, b, index.PairsFor(i, j));
      EXPECT_GE(vr.sim, 0.0);
      EXPECT_LE(vr.sim, 1.0) << "pair (" << i << "," << j << ")";
    }
  }
}

}  // namespace
}  // namespace hera
