#!/usr/bin/env python3
"""Bench regression gate: compare BENCH_*.json runs against committed baselines.

Usage:
  tools/bench_compare.py --current-dir /tmp/bench-json [--baseline-dir bench/baselines]
                         [--tolerance-scale S] [--self-test]

Exit codes: 0 all gated metrics within tolerance, 1 regression detected,
2 operational error (missing/corrupt files, unknown metric path).

Design notes
------------
CI machines are noisy and heterogeneous, so the gate only checks
*machine-robust* metrics: ratios of two timings measured in the same
process on the same data (e.g. kernel-vs-string verification speedup).
Absolute ns/op numbers are recorded in the JSON for humans but are not
gated — they swing with the runner's CPU generation far more than with
code changes.

Each gated metric is a dotted path into the bench JSON plus a direction
and a tolerance factor. For a higher-is-better metric with tolerance t,
the gate fails when current < baseline * t; for lower-is-better, when
current > baseline / t. --tolerance-scale loosens (>1 never fails more
easily) or tightens every tolerance at once, for experimentation.

A metric present in the manifest but missing from the current run is a
hard failure: silently dropping a gated series is itself a regression.

--self-test doctors an in-memory copy of the baseline with a 10x
slowdown and asserts the gate rejects it (and accepts the unmodified
baseline). CI runs it before the real comparison so a gate that has
rotted into always-pass fails loudly.
"""

import argparse
import json
import os
import sys

# (file, dotted metric path, direction, tolerance factor).
# direction: "higher" = bigger is better, "lower" = smaller is better.
# Tolerance 0.6 on a higher-is-better ratio allows a 40% drop before
# failing — wide enough for CI noise on a ratio, narrow enough to catch
# a kernel that silently fell back to the string path (a ~14x change).
MANIFEST = [
    ("BENCH_kernel.json", "verify.speedup", "higher", 0.6),
    ("BENCH_kernel.json", "verify.speedup_cold", "higher", 0.6),
    # SIMD tier ratios. A vector kernel that silently degrades to the
    # scalar merge pins simd_speedup at ~1.0; a Myers regression to the
    # row DP pins speedup_64 at ~1.0 — both far past a 40% allowance.
    ("BENCH_kernel.json", "verify.simd_speedup", "higher", 0.6),
    ("BENCH_kernel.json", "myers.speedup_64", "higher", 0.6),
    ("BENCH_flat_index.json", "candgen.batched_speedup", "higher", 0.6),
    # Deterministic (counts verifications and measures recall, no wall
    # clock), so the tolerance is tight. A frontier that degrades to
    # canonical order drops the gain to ~0.5x — far past the gate.
    ("BENCH_progressive.json", "progressive.recall_gain_50", "higher", 0.9),
]


def lookup(doc, dotted):
    """Resolves a dotted path into nested dicts; returns None if absent."""
    node = doc
    for hop in dotted.split("."):
        if not isinstance(node, dict) or hop not in node:
            return None
        node = node[hop]
    return node if isinstance(node, (int, float)) else None


def load_json(path):
    try:
        with open(path, "r", encoding="utf-8") as f:
            return json.load(f)
    except (OSError, ValueError) as e:
        print(f"error: cannot read {path}: {e}", file=sys.stderr)
        return None


def check(baseline_docs, current_docs, tolerance_scale):
    """Returns (regressions, errors) message lists."""
    regressions, errors = [], []
    for fname, metric, direction, tol in MANIFEST:
        base_doc = baseline_docs.get(fname)
        cur_doc = current_docs.get(fname)
        if base_doc is None:
            errors.append(f"{fname}: baseline file missing or unreadable")
            continue
        if cur_doc is None:
            errors.append(f"{fname}: current run missing or unreadable")
            continue
        base = lookup(base_doc, metric)
        cur = lookup(cur_doc, metric)
        if base is None:
            errors.append(f"{fname}:{metric}: not in baseline")
            continue
        if cur is None:
            # A gated series vanishing from the bench output is a
            # regression in coverage, not an infra error.
            regressions.append(f"{fname}:{metric}: missing from current run")
            continue
        tol = tol * tolerance_scale if direction == "higher" else tol / tolerance_scale
        tol = min(tol, 1.0) if direction == "higher" else max(tol, 1.0)
        if direction == "higher":
            bound = base * tol
            ok = cur >= bound
            rel = f">= {bound:.3f} (baseline {base:.3f} x {tol:.2f})"
        else:
            bound = base / tol if tol != 0 else float("inf")
            ok = cur <= bound
            rel = f"<= {bound:.3f} (baseline {base:.3f} / {tol:.2f})"
        status = "ok" if ok else "REGRESSION"
        print(f"{status:>10}  {fname}:{metric} = {cur:.3f}  want {rel}")
        if not ok:
            regressions.append(
                f"{fname}:{metric}: {cur:.3f} vs baseline {base:.3f} "
                f"(allowed {rel})"
            )
    return regressions, errors


def self_test(baseline_docs):
    """The gate must accept the baseline vs itself and reject a doctored copy."""
    ok_reg, ok_err = check(baseline_docs, baseline_docs, 1.0)
    if ok_reg or ok_err:
        print("self-test FAILED: baseline does not pass against itself",
              file=sys.stderr)
        return False
    doctored = json.loads(json.dumps(baseline_docs))  # deep copy
    for fname, metric, direction, _tol in MANIFEST:
        doc = doctored.get(fname)
        if doc is None:
            continue
        hops = metric.split(".")
        node = doc
        for hop in hops[:-1]:
            node = node[hop]
        # 10x in the bad direction: far outside any sane tolerance.
        node[hops[-1]] *= 0.1 if direction == "higher" else 10.0
    bad_reg, bad_err = check(baseline_docs, doctored, 1.0)
    if len(bad_reg) != len(MANIFEST) or bad_err:
        print("self-test FAILED: doctored slowdown was not rejected",
              file=sys.stderr)
        return False
    print("self-test ok: gate accepts baseline, rejects 10x slowdown")
    return True


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--baseline-dir", default="bench/baselines")
    ap.add_argument("--current-dir",
                    help="directory holding this run's BENCH_*.json")
    ap.add_argument("--tolerance-scale", type=float, default=1.0,
                    help="scale every tolerance (>1 loosens, <1 tightens)")
    ap.add_argument("--self-test", action="store_true",
                    help="verify the gate rejects a doctored slowdown, then exit")
    args = ap.parse_args()

    files = sorted({fname for fname, _, _, _ in MANIFEST})
    baseline_docs = {
        f: load_json(os.path.join(args.baseline_dir, f)) for f in files
    }
    if any(doc is None for doc in baseline_docs.values()):
        return 2

    if args.self_test:
        return 0 if self_test(baseline_docs) else 2

    if not args.current_dir:
        print("error: --current-dir is required (or use --self-test)",
              file=sys.stderr)
        return 2
    current_docs = {
        f: load_json(os.path.join(args.current_dir, f)) for f in files
    }
    regressions, errors = check(baseline_docs, current_docs,
                                args.tolerance_scale)
    for msg in errors:
        print(f"error: {msg}", file=sys.stderr)
    if errors:
        return 2
    if regressions:
        print(f"\n{len(regressions)} bench regression(s):", file=sys.stderr)
        for msg in regressions:
            print(f"  {msg}", file=sys.stderr)
        return 1
    print("bench gate: all metrics within tolerance")
    return 0


if __name__ == "__main__":
    sys.exit(main())
